//! Durable run state: versioned, CRC-checksummed, atomically written
//! snapshots plus an append-only label journal.
//!
//! VAER's scarce resource is human labels (paper §V): a crash mid-run
//! must never throw them away, and a corrupted snapshot must never be
//! served as a model. This module provides the two durability
//! primitives the trainers build on:
//!
//! - [`CheckpointStore`] — numbered snapshot files in one directory,
//!   each wrapped in a `VAERCKP1` envelope carrying a CRC-32 of the
//!   payload. Writes go to a temp file, are fsynced, and are renamed
//!   into place (atomic on POSIX), with bounded retry/backoff on IO
//!   errors; reads walk snapshots newest-first and silently skip torn
//!   or corrupt files, falling back to the newest valid one.
//! - [`Journal`] — an append-only JSONL file of labelled pairs, fsynced
//!   per entry, so every oracle answer is durable the moment it is
//!   given — even if the process dies before the next snapshot. A torn
//!   final line (crash mid-append) is tolerated on replay.
//!
//! [`AlSession`] combines the two for the active-learning loop: label
//! queries are answered from the journal on resume (without re-billing
//! the oracle) and journaled-then-answered on first ask, which is what
//! makes a resumed run bit-identical to an uninterrupted one.
//!
//! Fault-injection hooks (see `vaer-fault`): `checkpoint.write` (IO
//! error per attempt), `checkpoint.torn` (torn snapshot written in
//! place), `journal.append` (IO error).

use crate::resilience::{RetryPolicy, RunBudget};
use crate::CoreError;
use std::fs::{self, File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use vaer_data::Oracle;
use vaer_nn::crc32;

/// Envelope magic for snapshot files.
const MAGIC: &[u8; 8] = b"VAERCKP1";
/// Envelope format version.
const VERSION: u32 = 1;
/// Envelope header size: magic + version + seq + payload_len.
const HEADER_LEN: usize = 8 + 4 + 8 + 8;

/// Wraps `payload` in the `VAERCKP1` envelope: magic, version, sequence
/// number, payload length, payload, then a trailing CRC-32 computed over
/// *everything* before it (header included, so a corrupted sequence
/// number is caught too).
pub fn seal(seq: u64, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len() + 4);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Validates a `VAERCKP1` envelope and returns `(seq, payload)`.
///
/// # Errors
/// [`CoreError::Checkpoint`] if the envelope is truncated, has the wrong
/// magic or version, or fails its CRC — i.e. on any torn or corrupt file.
pub fn unseal(bytes: &[u8]) -> Result<(u64, Vec<u8>), CoreError> {
    if bytes.len() < HEADER_LEN + 4 {
        return Err(CoreError::Checkpoint("snapshot truncated".into()));
    }
    if &bytes[..8] != MAGIC {
        return Err(CoreError::Checkpoint("missing VAERCKP1 magic".into()));
    }
    let (body, tail) = bytes.split_at(bytes.len() - 4);
    let stored_crc = u32::from_le_bytes(tail.try_into().unwrap()); // vaer-lint: allow(panic) -- split_at leaves exactly 4 bytes; infallible
    if crc32(body) != stored_crc {
        return Err(CoreError::Checkpoint(
            "snapshot checksum mismatch (corrupt or torn data)".into(),
        ));
    }
    let version = u32::from_le_bytes(body[8..12].try_into().unwrap()); // vaer-lint: allow(panic) -- fixed 4-byte slice; infallible
    if version != VERSION {
        return Err(CoreError::Checkpoint(format!(
            "unsupported snapshot version {version}"
        )));
    }
    let seq = u64::from_le_bytes(body[12..20].try_into().unwrap()); // vaer-lint: allow(panic) -- fixed 8-byte slice; infallible
    let len = u64::from_le_bytes(body[20..28].try_into().unwrap()) as usize; // vaer-lint: allow(panic) -- fixed 8-byte slice; infallible
    let payload = &body[HEADER_LEN..];
    if payload.len() != len {
        return Err(CoreError::Checkpoint(format!(
            "snapshot payload length {} != declared {len} (torn write?)",
            payload.len()
        )));
    }
    Ok((seq, payload.to_vec()))
}

/// Little-endian byte reader shared by the crate's state (de)serialisers
/// (`repr` / `active` training state). Every read is bounds-checked and
/// returns [`CoreError::Checkpoint`] on truncation — state parsing must
/// never panic, whatever the bytes are.
pub(crate) struct Cur<'a> {
    pub(crate) bytes: &'a [u8],
    pub(crate) pos: usize,
}

impl<'a> Cur<'a> {
    pub(crate) fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    pub(crate) fn take(&mut self, n: usize) -> Result<&'a [u8], CoreError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| CoreError::Checkpoint("state payload truncated".into()))?;
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    pub(crate) fn u32(&mut self) -> Result<u32, CoreError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap())) // vaer-lint: allow(panic) -- take(4) yields exactly 4 bytes; infallible
    }

    pub(crate) fn u64(&mut self) -> Result<u64, CoreError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap())) // vaer-lint: allow(panic) -- take(8) yields exactly 8 bytes; infallible
    }

    /// A `u32`-length-prefixed list of `f32`s, bounds-checked before
    /// allocation.
    pub(crate) fn f32_vec(&mut self) -> Result<Vec<f32>, CoreError> {
        let n = self.u32()? as usize;
        let raw = self.take(
            n.checked_mul(4)
                .ok_or_else(|| CoreError::Checkpoint("state length overflow".into()))?,
        )?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap())) // vaer-lint: allow(panic) -- chunks_exact(4) yields 4-byte slices; infallible
            .collect())
    }

    /// A `u64`-length-prefixed byte blob, bounds-checked before allocation.
    pub(crate) fn blob(&mut self) -> Result<&'a [u8], CoreError> {
        let n = self.u64()? as usize;
        self.take(n)
    }

    pub(crate) fn rng_state(&mut self) -> Result<[u64; 4], CoreError> {
        Ok([self.u64()?, self.u64()?, self.u64()?, self.u64()?])
    }
}

pub(crate) fn put_f32_vec(out: &mut Vec<u8>, vals: &[f32]) {
    out.extend_from_slice(&(vals.len() as u32).to_le_bytes());
    for &v in vals {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

pub(crate) fn put_blob(out: &mut Vec<u8>, blob: &[u8]) {
    out.extend_from_slice(&(blob.len() as u64).to_le_bytes());
    out.extend_from_slice(blob);
}

pub(crate) fn put_rng_state(out: &mut Vec<u8>, s: [u64; 4]) {
    for w in s {
        out.extend_from_slice(&w.to_le_bytes());
    }
}

/// A directory of numbered snapshot files (`{prefix}-{seq:08}.ckpt`),
/// written atomically and read newest-valid-first.
#[derive(Debug)]
pub struct CheckpointStore {
    dir: PathBuf,
    prefix: String,
    retry: RetryPolicy,
}

impl CheckpointStore {
    /// Opens (creating if needed) the snapshot directory. Writes retry
    /// under [`RetryPolicy::checkpoint_default`]; override with
    /// [`with_retry`](Self::with_retry).
    ///
    /// # Errors
    /// [`CoreError::Io`] if the directory cannot be created.
    pub fn open(dir: impl Into<PathBuf>, prefix: &str) -> Result<Self, CoreError> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(Self {
            dir,
            prefix: prefix.to_string(),
            retry: RetryPolicy::checkpoint_default(),
        })
    }

    /// Replaces the write-retry policy.
    #[must_use]
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// The snapshot directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path_for(&self, seq: u64) -> PathBuf {
        self.dir.join(format!("{}-{seq:08}.ckpt", self.prefix))
    }

    /// Writes snapshot `seq` atomically: envelope to a temp file, fsync,
    /// rename into place. Transient IO failures retry under the store's
    /// [`RetryPolicy`] (capped, jittered exponential backoff).
    ///
    /// # Errors
    /// [`CoreError::Io`] once the retry budget is spent.
    pub fn write(&self, seq: u64, payload: &[u8]) -> Result<(), CoreError> {
        self.write_budgeted(seq, payload, &RunBudget::unlimited())
            .map(|_| ())
    }

    /// [`write`](Self::write) under a [`RunBudget`]: retry sleeps are
    /// clamped to the remaining deadline (a retrying writer can never
    /// sleep through it). Returns the number of retries burned so callers
    /// can account them in a `ResolutionHealth` report.
    ///
    /// # Errors
    /// [`CoreError::Io`] once the retry budget is spent or the run
    /// budget no longer allows a retry sleep.
    pub fn write_budgeted(
        &self,
        seq: u64,
        payload: &[u8],
        budget: &RunBudget,
    ) -> Result<u32, CoreError> {
        let envelope = seal(seq, payload);
        let final_path = self.path_for(seq);
        let tmp_path = self.dir.join(format!(".{}-{seq:08}.tmp", self.prefix));
        let mut retries = 0u32;
        let out = self.retry.run(
            budget,
            |_| self.try_write(&final_path, &tmp_path, &envelope),
            |_, _| {
                retries += 1;
                crate::obs::handles().checkpoint_write_retries.add(1);
            },
        );
        match out {
            Ok(()) => {
                crate::obs::handles().checkpoint_writes.add(1);
                Ok(retries)
            }
            Err(e) => {
                let _ = fs::remove_file(&tmp_path);
                Err(CoreError::Io(e))
            }
        }
    }

    fn try_write(
        &self,
        final_path: &Path,
        tmp_path: &Path,
        envelope: &[u8],
    ) -> std::io::Result<()> {
        if let Some(action) = vaer_fault::trigger("checkpoint.write") {
            match action {
                vaer_fault::Action::Err => {
                    return Err(std::io::Error::other("injected checkpoint write failure"))
                }
                vaer_fault::Action::Torn => {
                    // Simulate a crash mid-write: half an envelope lands at
                    // the final path, bypassing the temp-then-rename dance.
                    fs::write(final_path, &envelope[..envelope.len() / 2])?;
                    return Ok(());
                }
                _ => {}
            }
        }
        {
            let mut f = File::create(tmp_path)?;
            f.write_all(envelope)?;
            f.sync_all()?;
        }
        fs::rename(tmp_path, final_path)?;
        // Best-effort directory fsync so the rename itself is durable.
        if let Ok(d) = File::open(&self.dir) {
            let _ = d.sync_all();
        }
        Ok(())
    }

    /// Sequence numbers of all snapshot files present (unvalidated),
    /// ascending.
    ///
    /// # Errors
    /// [`CoreError::Io`] if the directory cannot be read.
    pub fn list(&self) -> Result<Vec<u64>, CoreError> {
        let mut seqs = Vec::new();
        // vaer-lint: allow(cancel-probe-coverage) -- directory scan bounded by checkpoint-file count
        for entry in fs::read_dir(&self.dir)? {
            let name = entry?.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(rest) = name.strip_prefix(&format!("{}-", self.prefix)) else {
                continue;
            };
            let Some(num) = rest.strip_suffix(".ckpt") else {
                continue;
            };
            if let Ok(seq) = num.parse::<u64>() {
                seqs.push(seq);
            }
        }
        seqs.sort_unstable();
        Ok(seqs)
    }

    /// Loads and validates snapshot `seq`.
    ///
    /// # Errors
    /// [`CoreError::Io`] if the file cannot be read,
    /// [`CoreError::Checkpoint`] if it is torn, corrupt, or mislabelled.
    pub fn read(&self, seq: u64) -> Result<Vec<u8>, CoreError> {
        let bytes = fs::read(self.path_for(seq))?;
        let (stored_seq, payload) = unseal(&bytes)?;
        if stored_seq != seq {
            return Err(CoreError::Checkpoint(format!(
                "snapshot file for seq {seq} contains seq {stored_seq}"
            )));
        }
        Ok(payload)
    }

    /// Loads the newest snapshot that validates, skipping (and counting)
    /// torn or corrupt files. Returns `None` when no valid snapshot
    /// exists.
    ///
    /// # Errors
    /// [`CoreError::Io`] if the directory cannot be read at all.
    pub fn read_latest(&self) -> Result<Option<(u64, Vec<u8>)>, CoreError> {
        for &seq in self.list()?.iter().rev() {
            let Ok(bytes) = fs::read(self.path_for(seq)) else {
                crate::obs::handles().checkpoint_corrupt_skipped.add(1);
                continue;
            };
            match unseal(&bytes) {
                Ok((stored_seq, payload)) if stored_seq == seq => return Ok(Some((seq, payload))),
                _ => {
                    crate::obs::handles().checkpoint_corrupt_skipped.add(1);
                    vaer_obs::event(
                        "checkpoint.corrupt",
                        &[("seq", seq.into()), ("prefix", self.prefix.clone().into())],
                    );
                }
            }
        }
        Ok(None)
    }

    /// Deletes all but the newest `keep` snapshot files.
    ///
    /// # Errors
    /// [`CoreError::Io`] if the directory cannot be read.
    pub fn prune(&self, keep: usize) -> Result<(), CoreError> {
        let seqs = self.list()?;
        if seqs.len() > keep {
            for &seq in &seqs[..seqs.len() - keep] {
                let _ = fs::remove_file(self.path_for(seq));
            }
        }
        Ok(())
    }
}

/// One oracle answer, as recorded in the label [`Journal`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JournalEntry {
    /// Position in the run's label-query stream (0-based, contiguous).
    pub seq: u64,
    /// Left-table entity index.
    pub left: usize,
    /// Right-table entity index.
    pub right: usize,
    /// The oracle's verdict.
    pub is_match: bool,
}

impl JournalEntry {
    fn to_json(self) -> String {
        format!(
            "{{\"seq\":{},\"left\":{},\"right\":{},\"is_match\":{}}}",
            self.seq, self.left, self.right, self.is_match
        )
    }

    fn from_json(line: &str) -> Option<Self> {
        let body = line.trim().strip_prefix('{')?.strip_suffix('}')?;
        let (mut seq, mut left, mut right, mut is_match) = (None, None, None, None);
        // vaer-lint: allow(cancel-probe-coverage) -- parses one journal line; field count is tiny and fixed
        for field in body.split(',') {
            let (key, value) = field.split_once(':')?;
            let key = key.trim().trim_matches('"');
            let value = value.trim();
            match key {
                "seq" => seq = value.parse::<u64>().ok(),
                "left" => left = value.parse::<usize>().ok(),
                "right" => right = value.parse::<usize>().ok(),
                "is_match" => is_match = value.parse::<bool>().ok(),
                _ => return None,
            }
        }
        Some(Self {
            seq: seq?,
            left: left?,
            right: right?,
            is_match: is_match?,
        })
    }
}

/// An append-only JSONL file of [`JournalEntry`]s, fsynced per append so
/// each label is durable before it is used.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
}

impl Journal {
    /// Points the journal at `path` (the file need not exist yet).
    pub fn open(path: impl Into<PathBuf>) -> Self {
        Self { path: path.into() }
    }

    /// The journal file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one entry and fsyncs it to disk.
    ///
    /// # Errors
    /// [`CoreError::Io`] when the write fails.
    pub fn append(&self, entry: &JournalEntry) -> Result<(), CoreError> {
        if let Some(vaer_fault::Action::Err) = vaer_fault::trigger("journal.append") {
            return Err(CoreError::Io(std::io::Error::other(
                "injected journal append failure",
            )));
        }
        let mut f = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)?;
        let mut line = entry.to_json();
        line.push('\n');
        f.write_all(line.as_bytes())?;
        f.sync_data()?;
        crate::obs::handles().journal_appends.add(1);
        Ok(())
    }

    /// Replays the journal. A missing file is an empty journal; a torn
    /// *final* line (crash mid-append) is dropped; anything else
    /// malformed — a bad interior line or a gap in the sequence numbers —
    /// is an error, since silently skipping labels would desynchronise a
    /// resumed run.
    ///
    /// # Errors
    /// [`CoreError::Io`] on read failure, [`CoreError::Checkpoint`] on a
    /// corrupt interior line or non-contiguous sequence numbers.
    pub fn read_all(&self) -> Result<Vec<JournalEntry>, CoreError> {
        let text = match fs::read_to_string(&self.path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(CoreError::Io(e)),
        };
        let lines: Vec<&str> = text.lines().collect();
        let mut entries = Vec::with_capacity(lines.len());
        // vaer-lint: allow(cancel-probe-coverage) -- journal replay bounded by the on-disk line count
        for (i, line) in lines.iter().enumerate() {
            match JournalEntry::from_json(line) {
                Some(e) => entries.push(e),
                None if i + 1 == lines.len() => break, // torn tail tolerated
                None => {
                    return Err(CoreError::Checkpoint(format!(
                        "journal line {} is corrupt",
                        i + 1
                    )))
                }
            }
        }
        // vaer-lint: allow(cancel-probe-coverage) -- sequence-gap check over the same bounded entry list
        for (i, e) in entries.iter().enumerate() {
            if e.seq != i as u64 {
                return Err(CoreError::Checkpoint(format!(
                    "journal sequence gap: entry {i} has seq {}",
                    e.seq
                )));
            }
        }
        Ok(entries)
    }
}

/// Durable state for one active-learning run: a snapshot store plus the
/// label journal, living in one directory.
///
/// All oracle queries go through [`AlSession::label`], keyed by their
/// position in the run's query stream. On a fresh run every query hits
/// the oracle and is journaled before use; on a resumed run the queries
/// already journaled are replayed verbatim (and, because
/// [`Oracle`] bills each unique pair once, never re-billed), so the
/// resumed run consumes the exact same label stream as the original.
#[derive(Debug)]
pub struct AlSession {
    ckpt: CheckpointStore,
    journal: Journal,
    entries: Vec<JournalEntry>,
}

impl AlSession {
    /// Opens (or creates) the session directory and replays its journal.
    ///
    /// # Errors
    /// [`CoreError::Io`] / [`CoreError::Checkpoint`] if the directory or
    /// journal is unusable.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, CoreError> {
        let dir = dir.into();
        let ckpt = CheckpointStore::open(&dir, "al")?;
        let journal = Journal::open(dir.join("labels.jsonl"));
        let entries = journal.read_all()?;
        Ok(Self {
            ckpt,
            journal,
            entries,
        })
    }

    /// The journaled labels so far (replayed at open).
    pub fn labels(&self) -> &[JournalEntry] {
        &self.entries
    }

    /// The newest valid learner snapshot, if any.
    ///
    /// # Errors
    /// [`CoreError::Io`] if the directory cannot be read.
    pub fn latest_snapshot(&self) -> Result<Option<(u64, Vec<u8>)>, CoreError> {
        self.ckpt.read_latest()
    }

    /// Answers label query number `seq` for `(left, right)`: from the
    /// journal when already recorded (a resumed run), otherwise from the
    /// oracle, journaled durably before the answer is used.
    ///
    /// # Errors
    /// [`CoreError::Checkpoint`] when the journaled pair at `seq` is not
    /// `(left, right)` (the resumed run has diverged from the original —
    /// refusing is safer than mixing label streams) or when `seq` skips
    /// ahead of the journal; [`CoreError::Io`] when the append fails.
    pub fn label(
        &mut self,
        oracle: &Oracle,
        seq: u64,
        left: usize,
        right: usize,
    ) -> Result<bool, CoreError> {
        if let Some(e) = self.entries.get(seq as usize) {
            if e.left != left || e.right != right {
                return Err(CoreError::Checkpoint(format!(
                    "journal replay mismatch at seq {seq}: recorded ({}, {}), asked ({left}, {right})",
                    e.left, e.right
                )));
            }
            crate::obs::handles().journal_replays.add(1);
            return Ok(e.is_match);
        }
        if seq as usize != self.entries.len() {
            return Err(CoreError::Checkpoint(format!(
                "label query seq {seq} skips journal position {}",
                self.entries.len()
            )));
        }
        let is_match = oracle.label(left, right);
        let entry = JournalEntry {
            seq,
            left,
            right,
            is_match,
        };
        self.journal.append(&entry)?;
        self.entries.push(entry);
        Ok(is_match)
    }

    /// Writes learner snapshot `seq` and prunes old snapshots (the three
    /// newest are kept so corrupt files still have fallbacks).
    ///
    /// # Errors
    /// [`CoreError::Io`] when every write attempt fails.
    pub fn snapshot(&self, seq: u64, payload: &[u8]) -> Result<(), CoreError> {
        self.ckpt.write(seq, payload)?;
        self.ckpt.prune(3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("vaer-ckpt-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn envelope_round_trip_and_corruption_detection() {
        let payload = b"hello checkpoint".to_vec();
        let sealed = seal(7, &payload);
        let (seq, back) = unseal(&sealed).unwrap();
        assert_eq!(seq, 7);
        assert_eq!(back, payload);
        // Truncations and bit flips anywhere must be rejected.
        for cut in [0, 5, HEADER_LEN - 1, sealed.len() - 1] {
            assert!(unseal(&sealed[..cut]).is_err(), "cut at {cut} accepted");
        }
        for pos in [0, 9, 15, 28, HEADER_LEN, sealed.len() - 1] {
            let mut bad = sealed.clone();
            bad[pos] ^= 0x04;
            assert!(unseal(&bad).is_err(), "flip at {pos} accepted");
        }
    }

    #[test]
    fn store_writes_lists_reads_and_prunes() {
        let dir = temp_dir("store");
        let store = CheckpointStore::open(&dir, "t").unwrap();
        assert_eq!(store.read_latest().unwrap(), None);
        for seq in 0..5u64 {
            store
                .write(seq, format!("payload-{seq}").as_bytes())
                .unwrap();
        }
        assert_eq!(store.list().unwrap(), vec![0, 1, 2, 3, 4]);
        let (seq, payload) = store.read_latest().unwrap().unwrap();
        assert_eq!(seq, 4);
        assert_eq!(payload, b"payload-4");
        store.prune(2).unwrap();
        assert_eq!(store.list().unwrap(), vec![3, 4]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn read_latest_skips_corrupt_snapshots() {
        let dir = temp_dir("fallback");
        let store = CheckpointStore::open(&dir, "t").unwrap();
        store.write(1, b"good").unwrap();
        store.write(2, b"newer").unwrap();
        // Corrupt the newest file by hand (torn write).
        let newest = dir.join("t-00000002.ckpt");
        let bytes = fs::read(&newest).unwrap();
        fs::write(&newest, &bytes[..bytes.len() / 2]).unwrap();
        let (seq, payload) = store.read_latest().unwrap().unwrap();
        assert_eq!(seq, 1, "fallback must pick the newest valid snapshot");
        assert_eq!(payload, b"good");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn write_retries_transient_failures_and_respects_budget() {
        let _g = vaer_fault::test_lock();
        let dir = temp_dir("retry");
        let store = CheckpointStore::open(&dir, "t").unwrap();
        // First attempt fails, the retry succeeds.
        vaer_fault::configure("checkpoint.write=err@1").unwrap();
        let retries = store
            .write_budgeted(1, b"payload", &RunBudget::unlimited())
            .unwrap();
        assert_eq!(retries, 1);
        assert_eq!(store.read(1).unwrap(), b"payload");
        // Under an exhausted budget the writer must not sleep-and-retry.
        vaer_fault::configure("checkpoint.write=err").unwrap();
        let b = RunBudget::unlimited().with_deadline(std::time::Duration::ZERO);
        assert!(store.write_budgeted(2, b"payload", &b).is_err());
        assert_eq!(
            vaer_fault::hits("checkpoint.write"),
            1,
            "exhausted budget must stop after the first attempt"
        );
        vaer_fault::clear();
        // The failed write leaves no artifact behind.
        assert_eq!(store.list().unwrap(), vec![1]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn journal_appends_replays_and_tolerates_torn_tail() {
        let dir = temp_dir("journal");
        fs::create_dir_all(&dir).unwrap();
        let journal = Journal::open(dir.join("labels.jsonl"));
        assert!(journal.read_all().unwrap().is_empty());
        let entries = [
            JournalEntry {
                seq: 0,
                left: 3,
                right: 9,
                is_match: true,
            },
            JournalEntry {
                seq: 1,
                left: 4,
                right: 2,
                is_match: false,
            },
        ];
        for e in &entries {
            journal.append(e).unwrap();
        }
        assert_eq!(journal.read_all().unwrap(), entries);
        // A torn final line (crash mid-append) is dropped, not fatal.
        let mut f = OpenOptions::new()
            .append(true)
            .open(journal.path())
            .unwrap();
        f.write_all(b"{\"seq\":2,\"le").unwrap();
        drop(f);
        assert_eq!(journal.read_all().unwrap(), entries);
        // But a corrupt interior line is an error.
        fs::write(
            journal.path(),
            "{\"seq\":0,garbage\n{\"seq\":1,\"left\":1,\"right\":1,\"is_match\":true}\n",
        )
        .unwrap();
        assert!(journal.read_all().is_err());
        // As is a sequence gap.
        fs::write(
            journal.path(),
            "{\"seq\":0,\"left\":1,\"right\":1,\"is_match\":true}\n{\"seq\":5,\"left\":2,\"right\":2,\"is_match\":false}\n",
        )
        .unwrap();
        assert!(journal.read_all().is_err());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn session_replays_labels_without_rebilling() {
        let dir = temp_dir("session");
        let oracle = Oracle::new([(1, 1), (2, 2)]);
        {
            let mut session = AlSession::open(&dir).unwrap();
            assert!(session.label(&oracle, 0, 1, 1).unwrap());
            assert!(!session.label(&oracle, 1, 1, 2).unwrap());
            assert_eq!(oracle.queries_used(), 2);
        }
        // "Crash" and reopen: the same queries replay from the journal.
        {
            let mut session = AlSession::open(&dir).unwrap();
            assert_eq!(session.labels().len(), 2);
            assert!(session.label(&oracle, 0, 1, 1).unwrap());
            assert!(!session.label(&oracle, 1, 1, 2).unwrap());
            assert_eq!(oracle.queries_used(), 2, "replay must not re-bill");
            // Divergence from the journal is refused.
            assert!(session.label(&oracle, 0, 9, 9).is_err());
            // Skipping ahead is refused.
            assert!(session.label(&oracle, 7, 2, 2).is_err());
            // The next fresh query extends the journal and bills.
            assert!(session.label(&oracle, 2, 2, 2).unwrap());
            assert_eq!(oracle.queries_used(), 3);
        }
        let _ = fs::remove_dir_all(&dir);
    }
}
