//! Representation-quality evaluation — the top-K protocol of Table IV,
//! Fig. 4 and Table VII.
//!
//! For each labelled test pair `(s, t)`, the pair counts as retrieved when
//! `t` is among the top-K neighbours of `s` in table B *or* `s` is among
//! the top-K neighbours of `t` in table A (paper footnote 5). VAER
//! representations are searched on their μ vectors and re-ranked by the
//! full W₂² (paper §VI-B); raw IRs are searched on their concatenated
//! per-attribute vectors.

use crate::entity::{EntityRepr, IrTable};
use vaer_data::PairSet;
use vaer_index::{BruteForceKnn, KnnIndex};
use vaer_stats::metrics::TopKReport;

/// Top-K evaluation over raw IR tuple vectors (the paper's left-hand
/// baseline columns in Table IV).
pub fn topk_eval_irs(a: &IrTable, b: &IrTable, test: &PairSet, k: usize) -> TopKReport {
    let a_keys = flat_ir_keys(a);
    let b_keys = flat_ir_keys(b);
    topk_eval_keys(&a_keys, &b_keys, None, test, k)
}

/// Top-K evaluation over VAER entity representations: μ-vector search
/// re-ranked by W₂² (the right-hand columns in Table IV).
pub fn topk_eval_vae(
    reprs_a: &[EntityRepr],
    reprs_b: &[EntityRepr],
    test: &PairSet,
    k: usize,
) -> TopKReport {
    let a_keys: Vec<Vec<f32>> = reprs_a.iter().map(EntityRepr::flat_mu).collect();
    let b_keys: Vec<Vec<f32>> = reprs_b.iter().map(EntityRepr::flat_mu).collect();
    topk_eval_keys(&a_keys, &b_keys, Some((reprs_a, reprs_b)), test, k)
}

/// Recall@K over the full ground-truth duplicate list (used for the
/// Fig. 4 sweep and Table VII's repr-recall column).
pub fn recall_at_k_vae(
    reprs_a: &[EntityRepr],
    reprs_b: &[EntityRepr],
    duplicates: &[(usize, usize)],
    k: usize,
) -> f32 {
    let test: PairSet = duplicates
        .iter()
        .map(|&(l, r)| vaer_data::LabeledPair {
            left: l,
            right: r,
            is_match: true,
        })
        .collect();
    topk_eval_vae(reprs_a, reprs_b, &test, k).recall
}

/// Concatenates the per-attribute IRs of every tuple into one key vector.
pub fn flat_ir_keys(table: &IrTable) -> Vec<Vec<f32>> {
    (0..table.len())
        .map(|t| {
            let rows = table.tuple_rows(t);
            rows.as_slice().to_vec()
        })
        .collect()
}

fn topk_eval_keys(
    a_keys: &[Vec<f32>],
    b_keys: &[Vec<f32>],
    rerank: Option<(&[EntityRepr], &[EntityRepr])>,
    test: &PairSet,
    k: usize,
) -> TopKReport {
    if a_keys.is_empty() || b_keys.is_empty() || test.is_empty() {
        return TopKReport::new(0, 0, 0, 0);
    }
    // Exact search keeps the evaluation deterministic; LSH speed is
    // benchmarked separately in the micro benches.
    let index_b = BruteForceKnn::build(b_keys.to_vec());
    let index_a = BruteForceKnn::build(a_keys.to_vec());
    // Per-query retrieval with optional W₂ re-rank.
    let topk_of = |index: &BruteForceKnn,
                   query: &[f32],
                   query_repr: Option<&EntityRepr>,
                   target_reprs: Option<&[EntityRepr]>|
     -> Vec<usize> {
        match (query_repr, target_reprs) {
            (Some(q), Some(targets)) => {
                // Over-fetch 2k candidates by μ, re-rank by W₂².
                let mut cands: Vec<(usize, f32)> = index
                    .knn(query, 2 * k)
                    .into_iter()
                    .map(|n| (n.index, q.w2_squared(&targets[n.index])))
                    .collect();
                cands.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
                cands.into_iter().take(k).map(|(i, _)| i).collect()
            }
            _ => index.knn(query, k).into_iter().map(|n| n.index).collect(),
        }
    };

    let mut hits = 0usize;
    let mut total_pos = 0usize;
    let mut retrieved_labeled = 0usize;
    let mut retrieved_positive = 0usize;
    for p in &test.pairs {
        let (qa, qb) = (&a_keys[p.left], &b_keys[p.right]);
        let fw = topk_of(
            &index_b,
            qa,
            rerank.map(|(ra, _)| &ra[p.left]),
            rerank.map(|(_, rb)| rb),
        );
        let bw = topk_of(
            &index_a,
            qb,
            rerank.map(|(_, rb)| &rb[p.right]),
            rerank.map(|(ra, _)| ra),
        );
        let retrieved = fw.contains(&p.right) || bw.contains(&p.left);
        if p.is_match {
            total_pos += 1;
            if retrieved {
                hits += 1;
            }
        }
        if retrieved {
            retrieved_labeled += 1;
            if p.is_match {
                retrieved_positive += 1;
            }
        }
    }
    TopKReport::new(hits, total_pos, retrieved_positive, retrieved_labeled)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vaer_data::LabeledPair;
    use vaer_linalg::Matrix;
    use vaer_stats::gaussian::DiagGaussian;

    fn repr(mu: &[f32]) -> EntityRepr {
        EntityRepr::new(vec![DiagGaussian::new(mu.to_vec(), vec![0.1; mu.len()])])
    }

    #[test]
    fn perfect_representation_scores_full_recall() {
        // A[i] and B[i] share coordinates.
        let reprs_a: Vec<EntityRepr> = (0..5).map(|i| repr(&[i as f32 * 10.0, 0.0])).collect();
        let reprs_b = reprs_a.clone();
        let test: PairSet = (0..5)
            .map(|i| LabeledPair {
                left: i,
                right: i,
                is_match: true,
            })
            .chain((0..5).map(|i| LabeledPair {
                left: i,
                right: (i + 2) % 5,
                is_match: false,
            }))
            .collect();
        let report = topk_eval_vae(&reprs_a, &reprs_b, &test, 1);
        assert!((report.recall - 1.0).abs() < 1e-6);
        // With K=1 only the true duplicate is retrieved, so precision = 1.
        assert!((report.precision - 1.0).abs() < 1e-6);
    }

    #[test]
    fn scrambled_representation_scores_zero_recall() {
        let reprs_a: Vec<EntityRepr> = (0..5).map(|i| repr(&[i as f32 * 10.0, 0.0])).collect();
        // B reversed: duplicates are now far apart.
        let reprs_b: Vec<EntityRepr> = (0..5)
            .map(|i| repr(&[(4 - i) as f32 * 10.0 + 5.0, 40.0]))
            .collect();
        let test: PairSet = (0..5)
            .map(|i| LabeledPair {
                left: i,
                right: i,
                is_match: true,
            })
            .collect();
        let report = topk_eval_vae(&reprs_a, &reprs_b, &test, 1);
        assert!(report.recall < 0.5);
    }

    #[test]
    fn ir_eval_uses_concatenated_tuples() {
        // 3 tuples, arity 2, ir_dim 1: keys are 2-d concatenations.
        let a = IrTable::new(
            2,
            Matrix::from_vec(6, 1, vec![0.0, 0.0, 1.0, 1.0, 2.0, 2.0]),
        );
        let b = a.clone();
        let keys = flat_ir_keys(&a);
        assert_eq!(keys.len(), 3);
        assert_eq!(keys[1], vec![1.0, 1.0]);
        let test: PairSet = (0..3)
            .map(|i| LabeledPair {
                left: i,
                right: i,
                is_match: true,
            })
            .collect();
        let report = topk_eval_irs(&a, &b, &test, 1);
        assert!((report.recall - 1.0).abs() < 1e-6);
    }

    #[test]
    fn recall_at_k_increases_with_k() {
        let reprs_a: Vec<EntityRepr> = (0..8).map(|i| repr(&[i as f32, 0.0])).collect();
        let reprs_b: Vec<EntityRepr> = (0..8).map(|i| repr(&[i as f32 + 0.6, 0.0])).collect();
        let duplicates: Vec<(usize, usize)> = (0..8).map(|i| (i, i)).collect();
        let r1 = recall_at_k_vae(&reprs_a, &reprs_b, &duplicates, 1);
        let r3 = recall_at_k_vae(&reprs_a, &reprs_b, &duplicates, 3);
        assert!(r3 >= r1, "recall@3 {r3} < recall@1 {r1}");
    }

    #[test]
    fn empty_inputs_yield_zero_report() {
        let report = topk_eval_vae(&[], &[], &PairSet::new(), 5);
        assert_eq!(report.recall, 0.0);
        assert_eq!(report.f1, 0.0);
    }
}
