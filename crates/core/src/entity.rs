//! Entity-level representations: one Gaussian per attribute.

use vaer_linalg::Matrix;
use vaer_stats::gaussian::{w2_squared, DiagGaussian};

/// A tuple's representation: `m` diagonal Gaussians, one per attribute
/// (the `{(μ₁, σ₁), …, (μ_m, σ_m)}` of paper §III-A).
#[derive(Debug, Clone, PartialEq)]
pub struct EntityRepr {
    /// Per-attribute latent distributions.
    pub attrs: Vec<DiagGaussian>,
}

impl EntityRepr {
    /// Wraps per-attribute Gaussians.
    pub fn new(attrs: Vec<DiagGaussian>) -> Self {
        Self { attrs }
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// Latent dimensionality per attribute.
    pub fn latent_dim(&self) -> usize {
        self.attrs.first().map_or(0, DiagGaussian::dims)
    }

    /// Concatenated mean vector (`arity · latent_dim`) — the key used for
    /// LSH search, justified by the paper's observation that W₂ is
    /// positively correlated with the Euclidean distance of the means.
    pub fn flat_mu(&self) -> Vec<f32> {
        self.attrs
            .iter()
            .flat_map(|g| g.mu.iter().copied())
            .collect()
    }

    /// Concatenated `(μ, σ)` sample via the reparameterisation trick — one
    /// plausible latent encoding of the whole tuple (used by the AL
    /// diversity estimator, Eq. 6).
    pub fn sample_flat<R: rand::Rng>(&self, rng: &mut R) -> Vec<f32> {
        self.attrs.iter().flat_map(|g| g.sample(rng)).collect()
    }

    /// Total squared 2-Wasserstein distance to another entity: the sum of
    /// attribute-wise W₂² terms (Eq. 3 applied per attribute).
    ///
    /// # Panics
    /// Panics on arity or latent-dimension mismatch.
    pub fn w2_squared(&self, other: &EntityRepr) -> f32 {
        assert_eq!(self.arity(), other.arity(), "entity arity mismatch");
        self.attrs
            .iter()
            .zip(other.attrs.iter())
            .map(|(a, b)| w2_squared(a, b))
            .sum()
    }

    /// Euclidean distance between concatenated means.
    pub fn mu_distance(&self, other: &EntityRepr) -> f32 {
        vaer_linalg::vector::euclidean(&self.flat_mu(), &other.flat_mu())
    }
}

/// Groups a flat batch of per-attribute Gaussians (row-major: tuple 0's
/// attributes, tuple 1's, …) into entity representations.
///
/// # Panics
/// Panics if `flat.len()` is not a multiple of `arity`.
pub fn group_entities(flat: Vec<DiagGaussian>, arity: usize) -> Vec<EntityRepr> {
    assert!(arity > 0, "arity must be positive");
    assert_eq!(
        flat.len() % arity,
        0,
        "flat length {} not divisible by arity {arity}",
        flat.len()
    );
    let mut out = Vec::with_capacity(flat.len() / arity);
    let mut iter = flat.into_iter();
    while let Some(first) = iter.next() {
        let mut attrs = Vec::with_capacity(arity);
        attrs.push(first);
        for _ in 1..arity {
            attrs.push(iter.next().expect("length checked above"));
        }
        out.push(EntityRepr::new(attrs));
    }
    out
}

/// The IR matrix of one table: `tuples · arity` rows, row-major per tuple
/// (tuple 0's attributes first). This is the layout every core component
/// exchanges — the VAE trains on all rows, the matcher selects
/// per-attribute slices, the AL loop selects per-tuple slices.
#[derive(Debug, Clone)]
pub struct IrTable {
    /// Attribute count per tuple.
    pub arity: usize,
    /// The stacked IRs (`tuples * arity` rows).
    pub irs: Matrix,
}

impl IrTable {
    /// Wraps a stacked IR matrix.
    ///
    /// # Panics
    /// Panics if the row count is not a multiple of `arity`.
    pub fn new(arity: usize, irs: Matrix) -> Self {
        assert!(arity > 0, "arity must be positive");
        assert_eq!(
            irs.rows() % arity,
            0,
            "{} rows not divisible by arity {arity}",
            irs.rows()
        );
        Self { arity, irs }
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.irs.rows() / self.arity
    }

    /// Whether the table holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.irs.rows() == 0
    }

    /// IR dimensionality.
    pub fn ir_dim(&self) -> usize {
        self.irs.cols()
    }

    /// Gathers attribute `attr` of the given tuples into a `len x ir_dim`
    /// matrix (one matcher-encoder input).
    ///
    /// # Panics
    /// Panics when `attr` or a tuple index is out of range (indices are
    /// produced by the caller, so this is a programming error).
    pub fn attr_rows(&self, tuples: &[usize], attr: usize) -> Matrix {
        assert!(attr < self.arity, "attribute {attr} out of range");
        let rows: Vec<usize> = tuples.iter().map(|&t| t * self.arity + attr).collect();
        self.irs.select_rows(&rows)
    }

    /// All `arity` IR rows of one tuple as an `arity x ir_dim` matrix.
    pub fn tuple_rows(&self, tuple: usize) -> Matrix {
        self.irs
            .slice_rows(tuple * self.arity, (tuple + 1) * self.arity)
    }
}

/// Stacks each tuple's per-attribute IR sentences into one matrix of
/// `tuples · arity` rows (the VAE's 2-D input of §III-A, footnote 1).
///
/// # Panics
/// Panics on an empty slice — there is no sensible empty-matrix shape to
/// return, and every caller builds the slice from a non-empty table.
pub fn stack_irs(per_tuple: &[Matrix]) -> Matrix {
    assert!(!per_tuple.is_empty(), "no tuples to stack");
    let mut out = per_tuple[0].clone();
    for m in &per_tuple[1..] {
        out = out.vconcat(m);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn entity(mu0: f32) -> EntityRepr {
        EntityRepr::new(vec![
            DiagGaussian::new(vec![mu0, 0.0], vec![0.1, 0.1]),
            DiagGaussian::new(vec![0.0, mu0], vec![0.2, 0.2]),
        ])
    }

    #[test]
    fn shapes() {
        let e = entity(1.0);
        assert_eq!(e.arity(), 2);
        assert_eq!(e.latent_dim(), 2);
        assert_eq!(e.flat_mu(), vec![1.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn w2_is_sum_over_attributes() {
        let a = entity(0.0);
        let b = entity(1.0);
        // Attribute 1: μ diff (1,0) → 1; attribute 2: μ diff (0,1) → 1.
        assert!((a.w2_squared(&b) - 2.0).abs() < 1e-6);
        assert_eq!(a.w2_squared(&a), 0.0);
    }

    #[test]
    fn mu_distance_matches_flat_euclidean() {
        let a = entity(0.0);
        let b = entity(2.0);
        assert!((a.mu_distance(&b) - (8.0f32).sqrt()).abs() < 1e-5);
    }

    #[test]
    fn sampling_varies_but_centres_on_mu() {
        let e = entity(1.0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let s1 = e.sample_flat(&mut rng);
        let s2 = e.sample_flat(&mut rng);
        assert_eq!(s1.len(), 4);
        assert_ne!(s1, s2);
        // Mean of many samples approaches flat_mu.
        let mut acc = [0.0f32; 4];
        let n = 2000;
        for _ in 0..n {
            for (a, v) in acc.iter_mut().zip(e.sample_flat(&mut rng)) {
                *a += v;
            }
        }
        for (a, m) in acc.iter().zip(e.flat_mu()) {
            assert!((a / n as f32 - m).abs() < 0.05);
        }
    }

    #[test]
    fn grouping() {
        let flat: Vec<DiagGaussian> = (0..6)
            .map(|i| DiagGaussian::new(vec![i as f32], vec![1.0]))
            .collect();
        let grouped = group_entities(flat, 3);
        assert_eq!(grouped.len(), 2);
        assert_eq!(grouped[1].attrs[0].mu, vec![3.0]);
    }

    #[test]
    #[should_panic]
    fn grouping_requires_divisible_length() {
        let flat: Vec<DiagGaussian> = vec![DiagGaussian::standard(2); 5];
        group_entities(flat, 3);
    }

    #[test]
    fn ir_table_access() {
        // 2 tuples, arity 3, ir_dim 2; row value encodes (tuple, attr).
        let data: Vec<f32> = (0..6)
            .flat_map(|i| vec![i as f32, 10.0 + i as f32])
            .collect();
        let t = IrTable::new(3, Matrix::from_vec(6, 2, data));
        assert_eq!(t.len(), 2);
        assert_eq!(t.ir_dim(), 2);
        let a1 = t.attr_rows(&[0, 1], 1);
        assert_eq!(a1.row(0), &[1.0, 11.0]); // tuple 0, attr 1 = flat row 1
        assert_eq!(a1.row(1), &[4.0, 14.0]); // tuple 1, attr 1 = flat row 4
        let tup = t.tuple_rows(1);
        assert_eq!(tup.shape(), (3, 2));
        assert_eq!(tup.row(0), &[3.0, 13.0]);
    }

    #[test]
    #[should_panic]
    fn ir_table_rejects_ragged() {
        IrTable::new(3, Matrix::zeros(5, 2));
    }

    #[test]
    fn stack_irs_concatenates() {
        let a = Matrix::filled(2, 3, 1.0);
        let b = Matrix::filled(1, 3, 2.0);
        let s = stack_irs(&[a, b]);
        assert_eq!(s.shape(), (3, 3));
        assert_eq!(s.get(2, 0), 2.0);
    }
}
