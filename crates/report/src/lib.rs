//! Regression analysis over the bench history: reads the JSONL run
//! records the benches append to `BENCH_run.json`, the kernel report in
//! `BENCH_kernels.json`, and (optionally) an [`vaer_obs`] JSONL dump,
//! and renders one markdown run report — per-stage time/alloc/RSS
//! tables, kernel throughput with cross-run trend verdicts, and the
//! telemetry histogram quantiles.
//!
//! The verdicts replace ad-hoc fixed-ratio gates (the old quick-mode
//! "current ≥ 0.4× previous" check in the `micro` bench): each gated
//! metric is compared against a **noise band** learned from its own
//! history — `median ± max(4·MAD, 25%·|median|)` over the last N runs —
//! so a metric that legitimately swings 2× between container runs gets
//! a wide band, while a stable metric gets a tight one. Fewer than three
//! prior points yields an `insufficient history` verdict, which never
//! gates.
//!
//! Everything here returns defaults on malformed input instead of
//! panicking: the report must not be able to fail a CI run for any
//! reason other than an actual regression verdict.

use vaer_obs::json::JsonValue;

/// Outcome of comparing one metric's current value to its noise band.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Inside the band: no evidence of change.
    Pass,
    /// Outside the band in the bad direction.
    Regression,
    /// Outside the band in the good direction.
    Improved,
    /// Fewer than three history points; no band, never gates.
    Insufficient,
}

impl Verdict {
    /// Stable label used in the markdown table and CI log lines.
    pub fn label(self) -> &'static str {
        match self {
            Verdict::Pass => "ok",
            Verdict::Regression => "REGRESSION",
            Verdict::Improved => "improved",
            Verdict::Insufficient => "insufficient history",
        }
    }
}

/// Acceptance interval for one metric, learned from its history.
#[derive(Clone, Copy, Debug)]
pub struct Band {
    /// Median of the history window.
    pub median: f64,
    /// Lower edge of the acceptance interval.
    pub lo: f64,
    /// Upper edge of the acceptance interval.
    pub hi: f64,
}

/// Median of a value slice (`None` when empty). Sorts a copy.
fn median(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    Some(sorted[sorted.len() / 2])
}

/// Noise band over a history window: `median ± max(4·MAD, 25%·|median|)`.
/// The MAD term widens the band for metrics that genuinely jitter; the
/// 25% floor keeps a few-lucky-runs history from shrinking the band to
/// nothing on a noisy substrate. `None` below three points.
pub fn noise_band(history: &[f64]) -> Option<Band> {
    if history.len() < 3 {
        return None;
    }
    let med = median(history)?;
    let devs: Vec<f64> = history.iter().map(|v| (v - med).abs()).collect();
    let mad = median(&devs)?;
    let half = (4.0 * mad).max(0.25 * med.abs());
    Some(Band {
        median: med,
        lo: med - half,
        hi: med + half,
    })
}

/// Verdict for `current` against a band, given the metric's direction.
pub fn judge(band: Option<&Band>, current: f64, higher_is_better: bool) -> Verdict {
    let Some(b) = band else {
        return Verdict::Insufficient;
    };
    let (low_side, high_side) = (current < b.lo, current > b.hi);
    match (higher_is_better, low_side, high_side) {
        (true, true, _) => Verdict::Regression,
        (true, _, true) => Verdict::Improved,
        (false, _, true) => Verdict::Regression,
        (false, true, _) => Verdict::Improved,
        _ => Verdict::Pass,
    }
}

/// A metric the report gates on.
pub struct MetricSpec {
    /// `bench` field of the run records the metric lives in.
    pub bench: &'static str,
    /// Record key holding the value.
    pub key: &'static str,
    /// Direction: `true` for throughput-like metrics.
    pub higher_is_better: bool,
}

/// The gated metric set: kernel throughput and the tape zero-alloc
/// contract from `micro`, lane medians and the int8 speedup from
/// `resolve_stages`. Wall-clock seconds are deliberately judged via the
/// noise band rather than absolute thresholds. The resilience counters
/// (`degradations_fired`, `stage_retries`, `checkpoint_write_retries`)
/// ride the same machinery: their history is all zeros on a healthy
/// clean path, which collapses the band to `[0, 0]`, so the first run
/// that silently degrades or burns retries gates as a regression.
pub const GATED_METRICS: &[MetricSpec] = &[
    MetricSpec {
        bench: "micro",
        key: "matmul_blocked_gflops",
        higher_is_better: true,
    },
    MetricSpec {
        bench: "micro",
        key: "matmul_t_blocked_gflops",
        higher_is_better: true,
    },
    MetricSpec {
        bench: "micro",
        key: "t_matmul_blocked_gflops",
        higher_is_better: true,
    },
    MetricSpec {
        bench: "micro",
        key: "i8_matmul_t_blocked_gflops",
        higher_is_better: true,
    },
    MetricSpec {
        bench: "micro",
        key: "w2_features_blocked_gflops",
        higher_is_better: true,
    },
    MetricSpec {
        bench: "micro",
        key: "tape_warm_allocs",
        higher_is_better: false,
    },
    MetricSpec {
        bench: "micro",
        key: "alloc_wrapper_kernel_share_pct",
        higher_is_better: false,
    },
    MetricSpec {
        bench: "resolve_stages",
        key: "score_f32_secs",
        higher_is_better: false,
    },
    MetricSpec {
        bench: "resolve_stages",
        key: "score_int8_secs",
        higher_is_better: false,
    },
    MetricSpec {
        bench: "resolve_stages",
        key: "score_int8_speedup",
        higher_is_better: true,
    },
    MetricSpec {
        bench: "resolve_stages",
        key: "degradations_fired",
        higher_is_better: false,
    },
    MetricSpec {
        bench: "resolve_stages",
        key: "stage_retries",
        higher_is_better: false,
    },
    MetricSpec {
        bench: "resolve_stages",
        key: "checkpoint_write_retries",
        higher_is_better: false,
    },
];

/// One judged metric in the report.
pub struct MetricReport {
    /// Source bench name.
    pub bench: &'static str,
    /// Record key.
    pub key: &'static str,
    /// Newest value.
    pub current: f64,
    /// History band (`None` below three prior points).
    pub band: Option<Band>,
    /// Number of prior points the band was learned from.
    pub history_len: usize,
    /// The verdict.
    pub verdict: Verdict,
}

/// Parses JSONL text into its object lines (non-objects are skipped —
/// a truncated tail line must not take the report down).
pub fn parse_jsonl(text: &str) -> Vec<JsonValue> {
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .filter_map(vaer_obs::json::parse)
        .filter(|v| matches!(v, JsonValue::Obj(_)))
        .collect()
}

/// Judges every gated metric present in `records`. The newest record of
/// each bench supplies the current value; up to `history` prior records
/// supply the band.
pub fn analyze(records: &[JsonValue], history: usize) -> Vec<MetricReport> {
    GATED_METRICS
        .iter()
        .filter_map(|spec| {
            let series: Vec<f64> = records
                .iter()
                .filter(|r| r.get_str("bench") == Some(spec.bench))
                .filter_map(|r| r.get_num(spec.key))
                .collect();
            let (&current, past) = series.split_last()?;
            let window = &past[past.len().saturating_sub(history)..];
            let band = noise_band(window);
            Some(MetricReport {
                bench: spec.bench,
                key: spec.key,
                current,
                band,
                history_len: window.len(),
                verdict: judge(band.as_ref(), current, spec.higher_is_better),
            })
        })
        .collect()
}

/// Formats a byte count with binary units.
pub fn human_bytes(bytes: u64) -> String {
    const UNITS: [&str; 4] = ["B", "KiB", "MiB", "GiB"];
    let mut value = bytes as f64;
    let mut unit = 0;
    while value >= 1024.0 && unit + 1 < UNITS.len() {
        value /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{bytes} B")
    } else {
        format!("{value:.1} {}", UNITS[unit])
    }
}

/// Formats seconds with an adaptive unit.
pub fn human_secs(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.2} s")
    } else if secs >= 1e-3 {
        format!("{:.2} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.2} µs", secs * 1e6)
    } else {
        format!("{:.0} ns", secs * 1e9)
    }
}

/// Formats a metric value: integral values without decimals, the rest
/// with three significant decimals.
fn fmt_value(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.3}")
    }
}

/// The newest record with the given `bench` field, if any.
fn newest<'a>(records: &'a [JsonValue], bench: &str) -> Option<&'a JsonValue> {
    records
        .iter()
        .rev()
        .find(|r| r.get_str("bench") == Some(bench))
}

/// Stage rows of a run record: every key group
/// `<base>_secs` / `<base>_runs` / `<base>_allocs` / `<base>_bytes` /
/// `<base>_rss_peak`, in record order.
fn stage_rows(record: &JsonValue) -> Vec<(String, f64, u64, u64, u64, u64)> {
    let JsonValue::Obj(members) = record else {
        return Vec::new();
    };
    members
        .iter()
        .filter_map(|(key, value)| {
            let base = key.strip_suffix("_secs")?;
            let runs = record.get(&format!("{base}_runs"))?.u64()?;
            let allocs = record.get(&format!("{base}_allocs"))?.u64()?;
            let bytes = record.get(&format!("{base}_bytes"))?.u64()?;
            let rss = record.get(&format!("{base}_rss_peak"))?.u64()?;
            Some((base.to_string(), value.num()?, runs, allocs, bytes, rss))
        })
        .collect()
}

/// Everything the renderer consumes. `kernels` is the parsed
/// `BENCH_kernels.json` object; `obs` the parsed lines of an
/// `ObsSink::write_jsonl` dump.
pub struct Inputs<'a> {
    /// Parsed `BENCH_run.json` lines, oldest first.
    pub records: &'a [JsonValue],
    /// Parsed `BENCH_kernels.json`, when available.
    pub kernels: Option<&'a JsonValue>,
    /// Parsed obs JSONL dump lines, when available.
    pub obs: &'a [JsonValue],
    /// History window for the noise bands.
    pub history: usize,
}

/// Renders the markdown report and returns it with the judged metrics
/// (the caller decides whether a `Regression` fails the run).
pub fn render(inputs: &Inputs) -> (String, Vec<MetricReport>) {
    let metrics = analyze(inputs.records, inputs.history);
    let mut out = String::new();
    out.push_str("# VAER perf report\n\n");

    // Run header: one line per bench present, from its newest record.
    for bench in ["micro", "resolve_stages"] {
        if let Some(rec) = newest(inputs.records, bench) {
            out.push_str(&format!(
                "- `{bench}`: schema v{}, scale {}, {} thread(s), obs `{}`{}\n",
                rec.get_num("schema_version").unwrap_or(1.0) as u64,
                rec.get_str("scale").unwrap_or("?"),
                rec.get_num("threads").unwrap_or(0.0) as u64,
                rec.get_str("obs").unwrap_or("?"),
                if rec.get("quick") == Some(&JsonValue::Bool(true)) {
                    ", quick"
                } else {
                    ""
                },
            ));
        }
    }

    out.push_str("\n## Regression verdicts\n\n");
    if metrics.is_empty() {
        out.push_str("No gated metrics found in the run history.\n");
    } else {
        out.push_str("| metric | current | band (median of history) | verdict |\n");
        out.push_str("|---|---|---|---|\n");
        for m in &metrics {
            let band = match &m.band {
                Some(b) => format!(
                    "[{}, {}] (median {} of {})",
                    fmt_value(b.lo),
                    fmt_value(b.hi),
                    fmt_value(b.median),
                    m.history_len
                ),
                None => format!("— ({} prior point(s))", m.history_len),
            };
            out.push_str(&format!(
                "| `{}.{}` | {} | {} | {} |\n",
                m.bench,
                m.key,
                fmt_value(m.current),
                band,
                m.verdict.label()
            ));
        }
        let regressions = metrics
            .iter()
            .filter(|m| m.verdict == Verdict::Regression)
            .count();
        out.push_str(&format!(
            "\n**Overall: {}**\n",
            if regressions == 0 {
                "ok".to_string()
            } else {
                format!("{regressions} REGRESSION(S)")
            }
        ));
    }

    if let Some(rec) = newest(inputs.records, "resolve_stages") {
        let rows = stage_rows(rec);
        if !rows.is_empty() {
            out.push_str("\n## Stage profile (resolve_stages)\n\n");
            out.push_str("| span | runs | total | allocs | bytes | peak RSS |\n");
            out.push_str("|---|---|---|---|---|---|\n");
            for (name, secs, runs, allocs, bytes, rss) in &rows {
                out.push_str(&format!(
                    "| `{name}` | {runs} | {} | {allocs} | {} | {} |\n",
                    human_secs(*secs),
                    human_bytes(*bytes),
                    human_bytes(*rss)
                ));
            }
        }
    }

    if let Some(rec) = newest(inputs.records, "resolve_stages") {
        let counters = [
            ("degradations_fired", "degradations"),
            ("stage_retries", "stage retries"),
            ("checkpoint_write_retries", "checkpoint write retries"),
        ];
        let present: Vec<(&str, u64)> = counters
            .iter()
            .filter_map(|(key, label)| Some((*label, rec.get(key)?.u64()?)))
            .collect();
        if !present.is_empty() {
            out.push_str("\n## Resilience (resolve_stages)\n\n");
            let total: u64 = present.iter().map(|(_, v)| v).sum();
            let line = present
                .iter()
                .map(|(label, v)| format!("{label} {v}"))
                .collect::<Vec<_>>()
                .join(", ");
            if total == 0 {
                out.push_str(&format!("- clean path: {line} — no silent degradation\n"));
            } else {
                out.push_str(&format!(
                    "- **SILENTLY DEGRADED clean path: {line}** — the run produced a \
                     result through a fallback lane; check the `degrade.*` obs events\n"
                ));
            }
            if let Some(secs) = rec.get_num("score_degraded_secs") {
                out.push_str(&format!(
                    "- injected int8→f32 fallback lane: {} per resolve\n",
                    human_secs(secs)
                ));
            }
        }
    }

    if let Some(JsonValue::Obj(entries)) = inputs.kernels.and_then(|k| k.get("kernels")) {
        out.push_str("\n## Kernel throughput (micro, single thread)\n\n");
        out.push_str("| kernel | optimised | reference | speedup |\n");
        out.push_str("|---|---|---|---|\n");
        for (name, entry) in entries {
            out.push_str(&format!(
                "| `{name}` | {:.2} | {:.2} | {:.2}x |\n",
                entry.get_num("blocked_gflops").unwrap_or(0.0),
                entry.get_num("reference_gflops").unwrap_or(0.0),
                entry.get_num("speedup").unwrap_or(0.0)
            ));
        }
    }

    let mut hists: Vec<&JsonValue> = inputs
        .obs
        .iter()
        .filter(|l| l.get_str("type") == Some("histogram"))
        .collect();
    if !hists.is_empty() {
        hists.sort_by(|a, b| {
            let key = |v: &JsonValue| v.get_num("sum_nanos").unwrap_or(0.0);
            key(b).total_cmp(&key(a))
        });
        out.push_str("\n## Telemetry histograms (top by total time)\n\n");
        out.push_str("| span | count | p50 | p90 | p99 | allocs | bytes | peak RSS |\n");
        out.push_str("|---|---|---|---|---|---|---|---|\n");
        for h in hists.iter().take(20) {
            let nanos = |key: &str| human_secs(h.get_num(key).unwrap_or(0.0) / 1e9);
            let int = |key: &str| h.get(key).and_then(JsonValue::u64).unwrap_or(0);
            out.push_str(&format!(
                "| `{}` | {} | {} | {} | {} | {} | {} | {} |\n",
                h.get_str("name").unwrap_or("?"),
                int("count"),
                nanos("p50_nanos"),
                nanos("p90_nanos"),
                nanos("p99_nanos"),
                int("allocs"),
                human_bytes(int("bytes")),
                human_bytes(int("rss_peak"))
            ));
        }
    }

    (out, metrics)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(bench: &str, pairs: &[(&str, f64)]) -> JsonValue {
        let mut members = vec![("bench".to_string(), JsonValue::Str(bench.to_string()))];
        for (k, v) in pairs {
            members.push((k.to_string(), JsonValue::Num(*v)));
        }
        JsonValue::Obj(members)
    }

    #[test]
    fn noise_band_needs_three_points_and_uses_mad() {
        assert!(noise_band(&[]).is_none());
        assert!(noise_band(&[1.0, 2.0]).is_none());
        // Tight history: the 25% floor dominates the (zero) MAD.
        let b = noise_band(&[10.0, 10.0, 10.0]).unwrap();
        assert_eq!(b.median, 10.0);
        assert!((b.lo - 7.5).abs() < 1e-9 && (b.hi - 12.5).abs() < 1e-9);
        // Jittery history: the MAD term wins and widens the band.
        let b = noise_band(&[10.0, 14.0, 6.0, 11.0, 9.0]).unwrap();
        assert_eq!(b.median, 10.0);
        assert!(b.hi - b.median >= 4.0, "MAD band too narrow: {b:?}");
    }

    #[test]
    fn judge_respects_direction() {
        let band = noise_band(&[10.0, 10.0, 10.0]);
        let b = band.as_ref();
        assert_eq!(judge(b, 10.0, true), Verdict::Pass);
        assert_eq!(judge(b, 5.0, true), Verdict::Regression);
        assert_eq!(judge(b, 20.0, true), Verdict::Improved);
        assert_eq!(judge(b, 20.0, false), Verdict::Regression);
        assert_eq!(judge(b, 5.0, false), Verdict::Improved);
        assert_eq!(judge(None, 1.0, true), Verdict::Insufficient);
    }

    #[test]
    fn analyze_flags_a_throughput_collapse() {
        let mut records: Vec<JsonValue> = (0..5)
            .map(|i| record("micro", &[("matmul_blocked_gflops", 24.0 + i as f64 * 0.5)]))
            .collect();
        records.push(record("micro", &[("matmul_blocked_gflops", 3.0)]));
        let metrics = analyze(&records, 20);
        let m = metrics
            .iter()
            .find(|m| m.key == "matmul_blocked_gflops")
            .unwrap();
        assert_eq!(m.verdict, Verdict::Regression);
        assert_eq!(m.history_len, 5);
        // Within-band current on the same history passes.
        let mut ok = records.clone();
        ok.pop();
        ok.push(record("micro", &[("matmul_blocked_gflops", 25.0)]));
        let metrics = analyze(&ok, 20);
        assert_eq!(
            metrics
                .iter()
                .find(|m| m.key == "matmul_blocked_gflops")
                .unwrap()
                .verdict,
            Verdict::Pass
        );
    }

    #[test]
    fn analyze_short_history_never_gates() {
        let records = vec![
            record("micro", &[("matmul_blocked_gflops", 25.0)]),
            record("micro", &[("matmul_blocked_gflops", 1.0)]),
        ];
        let metrics = analyze(&records, 20);
        assert_eq!(metrics[0].verdict, Verdict::Insufficient);
    }

    #[test]
    fn tape_allocs_zero_history_is_strict() {
        let mut records: Vec<JsonValue> = (0..4)
            .map(|_| record("micro", &[("tape_warm_allocs", 0.0)]))
            .collect();
        records.push(record("micro", &[("tape_warm_allocs", 2.0)]));
        let metrics = analyze(&records, 20);
        let m = metrics
            .iter()
            .find(|m| m.key == "tape_warm_allocs")
            .unwrap();
        assert_eq!(m.verdict, Verdict::Regression, "a warm alloc must gate");
    }

    #[test]
    fn degradation_counters_gate_at_zero() {
        let mut records: Vec<JsonValue> = (0..4)
            .map(|_| record("resolve_stages", &[("degradations_fired", 0.0)]))
            .collect();
        records.push(record("resolve_stages", &[("degradations_fired", 1.0)]));
        let metrics = analyze(&records, 20);
        let m = metrics
            .iter()
            .find(|m| m.key == "degradations_fired")
            .unwrap();
        assert_eq!(
            m.verdict,
            Verdict::Regression,
            "a silent degradation must gate"
        );
    }

    #[test]
    fn render_flags_silently_degraded_runs() {
        let clean = record(
            "resolve_stages",
            &[
                ("degradations_fired", 0.0),
                ("stage_retries", 0.0),
                ("checkpoint_write_retries", 0.0),
                ("score_degraded_secs", 0.012),
            ],
        );
        let inputs = Inputs {
            records: std::slice::from_ref(&clean),
            kernels: None,
            obs: &[],
            history: 20,
        };
        let (md, _) = render(&inputs);
        assert!(md.contains("no silent degradation"), "{md}");
        assert!(md.contains("fallback lane: 12.00 ms"), "{md}");
        let degraded = record("resolve_stages", &[("degradations_fired", 2.0)]);
        let inputs = Inputs {
            records: std::slice::from_ref(&degraded),
            kernels: None,
            obs: &[],
            history: 20,
        };
        let (md, _) = render(&inputs);
        assert!(md.contains("SILENTLY DEGRADED"), "{md}");
        assert!(md.contains("degradations 2"), "{md}");
    }

    #[test]
    fn parse_jsonl_skips_garbage_lines() {
        let text = "{\"bench\":\"micro\"}\n\nnot json\n42\n{\"bench\":\"resolve_stages\"}\n";
        let records = parse_jsonl(text);
        assert_eq!(records.len(), 2);
        assert_eq!(records[1].get_str("bench"), Some("resolve_stages"));
    }

    #[test]
    fn stage_rows_group_the_five_key_suffixes() {
        let line = "{\"bench\":\"resolve_stages\",\"exec_block_secs\":0.5,\
                    \"exec_block_runs\":2,\"exec_block_allocs\":10,\
                    \"exec_block_bytes\":2048,\"exec_block_rss_peak\":4096,\
                    \"score_f32_secs\":0.1}";
        let rec = vaer_obs::json::parse(line).unwrap();
        let rows = stage_rows(&rec);
        // score_f32_secs has no sibling keys and must not form a row.
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].0, "exec_block");
        assert_eq!(rows[0].2, 2);
        assert_eq!(rows[0].5, 4096);
    }

    #[test]
    fn render_is_deterministic_and_carries_verdicts() {
        let mut records: Vec<JsonValue> = (0..4)
            .map(|i| {
                record(
                    "resolve_stages",
                    &[("score_int8_speedup", 1.2 + 0.01 * i as f64)],
                )
            })
            .collect();
        records.push(record("resolve_stages", &[("score_int8_speedup", 0.3)]));
        let inputs = Inputs {
            records: &records,
            kernels: None,
            obs: &[],
            history: 20,
        };
        let (a, metrics) = render(&inputs);
        let (b, _) = render(&inputs);
        assert_eq!(a, b, "markdown must be byte-stable");
        assert!(a.contains("REGRESSION"), "{a}");
        assert!(metrics.iter().any(|m| m.verdict == Verdict::Regression));
    }

    #[test]
    fn render_includes_obs_histograms() {
        let hist = "{\"type\":\"histogram\",\"name\":\"exec.score\",\"count\":3,\
                    \"sum_nanos\":3000000,\"p50_nanos\":900000,\"p90_nanos\":1100000,\
                    \"p99_nanos\":1200000,\"allocs\":12,\"bytes\":4096,\"rss_peak\":1048576}";
        let obs = parse_jsonl(hist);
        let inputs = Inputs {
            records: &[],
            kernels: None,
            obs: &obs,
            history: 20,
        };
        let (md, _) = render(&inputs);
        assert!(md.contains("exec.score"), "{md}");
        assert!(md.contains("900.00 µs"), "{md}");
        assert!(md.contains("1.0 MiB"), "{md}");
    }

    #[test]
    fn human_units() {
        assert_eq!(human_bytes(512), "512 B");
        assert_eq!(human_bytes(2048), "2.0 KiB");
        assert_eq!(human_secs(0.25), "250.00 ms");
        assert_eq!(human_secs(2.5e-7), "250 ns");
    }
}
