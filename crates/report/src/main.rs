//! CLI entry point: `cargo run -p vaer-report -- [--deny] [--out x.md]`.

use std::process::ExitCode;
use vaer_report::{parse_jsonl, render, Inputs, Verdict};

const USAGE: &str = "vaer-report — bench-history regression report

USAGE:
    cargo run -p vaer-report -- [OPTIONS]

OPTIONS:
    --run <path>       Run-record JSONL history (default: BENCH_run.json)
    --kernels <path>   Kernel report JSON (default: BENCH_kernels.json)
    --obs <path>       ObsSink JSONL dump to include (default: none)
    --history <n>      History window for noise bands (default: 20)
    --out <path>       Write the markdown there instead of stdout
    --deny             Exit nonzero on any REGRESSION verdict
    --help             Show this help
";

fn main() -> ExitCode {
    let mut run_path = String::from("BENCH_run.json");
    let mut kernels_path = String::from("BENCH_kernels.json");
    let mut obs_path: Option<String> = None;
    let mut out_path: Option<String> = None;
    let mut history = 20usize;
    let mut deny = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--run" => match args.next() {
                Some(v) => run_path = v,
                None => return fail("--run needs a value"),
            },
            "--kernels" => match args.next() {
                Some(v) => kernels_path = v,
                None => return fail("--kernels needs a value"),
            },
            "--obs" => match args.next() {
                Some(v) => obs_path = Some(v),
                None => return fail("--obs needs a value"),
            },
            "--history" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => history = n,
                None => return fail("--history needs a number"),
            },
            "--out" => match args.next() {
                Some(v) => out_path = Some(v),
                None => return fail("--out needs a value"),
            },
            "--deny" => deny = true,
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return fail(&format!("unknown argument '{other}'")),
        }
    }

    let records = match std::fs::read_to_string(&run_path) {
        Ok(text) => parse_jsonl(&text),
        Err(e) => {
            eprintln!("vaer-report: cannot read {run_path}: {e}");
            Vec::new()
        }
    };
    // The kernel report is optional by design: its default path simply
    // may not exist before the first `cargo bench` run.
    let kernels = std::fs::read_to_string(&kernels_path)
        .ok()
        .and_then(|text| vaer_obs::json::parse(&text));
    let obs = match &obs_path {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(text) => parse_jsonl(&text),
            Err(e) => return fail(&format!("cannot read {path}: {e}")),
        },
        None => Vec::new(),
    };

    let (markdown, metrics) = render(&Inputs {
        records: &records,
        kernels: kernels.as_ref(),
        obs: &obs,
        history,
    });
    match &out_path {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &markdown) {
                return fail(&format!("cannot write {path}: {e}"));
            }
            println!("(report written to {path})");
        }
        None => print!("{markdown}"),
    }

    let regressions: Vec<String> = metrics
        .iter()
        .filter(|m| m.verdict == Verdict::Regression)
        .map(|m| format!("{}.{} = {}", m.bench, m.key, m.current))
        .collect();
    for r in &regressions {
        eprintln!("vaer-report: REGRESSION {r}");
    }
    if deny && !regressions.is_empty() {
        eprintln!("vaer-report: {} regression verdict(s)", regressions.len());
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("vaer-report: {msg}");
    eprint!("{USAGE}");
    ExitCode::FAILURE
}
