//! DITTO-style baseline (Li et al., PVLDB 2020).
//!
//! DITTO serialises a tuple pair into one token sequence with `[COL]` /
//! `[VAL]` markers, feeds it to a pretrained language model, and
//! fine-tunes a classification head. This reimplementation keeps that
//! shape: serialisation with column markers, the frozen BERT-style
//! contextual encoder standing in for the pretrained LM (see DESIGN.md
//! substitutions), and a deep fine-tuned head over the pair features.

use crate::{check_two_classes, Baseline, BaselineError};
use std::time::Instant;
use vaer_data::{Dataset, PairSet, Table};
use vaer_embed::{BertSimConfig, BertSimModel, IrModel};
use vaer_linalg::Matrix;
use vaer_nn::schedule::minibatches;
use vaer_nn::{Adam, Graph, Mlp, MlpConfig, NnRng, Optimizer, ParamStore, SeedableRng};

/// DITTO hyper-parameters.
#[derive(Debug, Clone)]
pub struct DittoConfig {
    /// Contextual-encoder dimensionality ("LM" width).
    pub encoder_dim: usize,
    /// Classification-head hidden widths.
    pub head_hidden: Vec<usize>,
    /// Training epochs for the head.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DittoConfig {
    fn default() -> Self {
        Self {
            encoder_dim: 96,
            head_hidden: vec![96, 48],
            epochs: 60,
            batch_size: 32,
            learning_rate: 2e-3,
            seed: 0xD177,
        }
    }
}

impl DittoConfig {
    /// A fast configuration for unit tests.
    pub fn fast() -> Self {
        Self {
            encoder_dim: 32,
            head_hidden: vec![24],
            epochs: 120,
            learning_rate: 5e-3,
            ..Self::default()
        }
    }
}

/// The trained DITTO-style model.
pub struct Ditto {
    encoder: BertSimModel,
    store: ParamStore,
    head: Mlp,
    config: DittoConfig,
    /// Wall-clock training time in seconds.
    pub train_secs: f64,
}

/// DITTO's serialisation: `COL c1 VAL v1 COL c2 VAL v2 …`.
pub fn serialize_tuple(table: &Table, row: usize) -> String {
    let mut out = String::new();
    for (attr, name) in table.schema.attributes.iter().enumerate() {
        out.push_str("col ");
        out.push_str(name);
        out.push_str(" val ");
        out.push_str(table.value(row, attr));
        out.push(' ');
    }
    out
}

impl Ditto {
    /// Fine-tunes the classification head on the dataset's training pairs.
    ///
    /// # Errors
    /// [`BaselineError::InsufficientData`] on empty/single-class input.
    pub fn train(dataset: &Dataset, config: &DittoConfig) -> Result<Self, BaselineError> {
        check_two_classes(&dataset.train_pairs)?;
        // vaer-lint: allow(det-wallclock) -- train_secs is the reported quantity, not an input to the model
        let t0 = Instant::now();
        let encoder = BertSimModel::new(&BertSimConfig {
            dims: config.encoder_dim,
            ..BertSimConfig::default()
        });
        let mut rng = NnRng::seed_from_u64(config.seed);
        let mut store = ParamStore::new();
        let mut dims = vec![4 * config.encoder_dim];
        dims.extend_from_slice(&config.head_hidden);
        dims.push(1);
        let head = Mlp::new(&mut store, "ditto.head", &MlpConfig::relu(dims), &mut rng);
        let mut model = Self {
            encoder,
            store,
            head,
            config: config.clone(),
            train_secs: 0.0,
        };
        // "LM" features are computed once (the encoder is frozen, as a
        // pretrained LM's lower layers effectively are in short fine-tunes).
        let features = model.pair_features(dataset, &dataset.train_pairs);
        let labels: Vec<f32> = dataset
            .train_pairs
            .pairs
            .iter()
            .map(|p| if p.is_match { 1.0 } else { 0.0 })
            .collect();
        let mut adam = Adam::with_rate(model.config.learning_rate);
        for _epoch in 0..model.config.epochs {
            for batch in minibatches(labels.len(), model.config.batch_size, &mut rng) {
                let x = features.select_rows(&batch);
                let y =
                    Matrix::from_vec(batch.len(), 1, batch.iter().map(|&i| labels[i]).collect());
                let mut g = Graph::new();
                let xt = g.input(x);
                let logits = model.head.forward(&mut g, &model.store, xt);
                let loss = g.bce_with_logits(logits, y);
                g.backward(loss);
                adam.step(&mut model.store, &g.param_grads());
            }
        }
        model.train_secs = t0.elapsed().as_secs_f64();
        Ok(model)
    }

    /// Pair features: `[e_s ⧺ e_t ⧺ |e_s - e_t| ⧺ e_s ⊙ e_t]` over the
    /// serialised tuples.
    fn pair_features(&self, dataset: &Dataset, pairs: &PairSet) -> Matrix {
        let d = self.config.encoder_dim;
        let mut out = Matrix::zeros(pairs.len(), 4 * d);
        for (i, p) in pairs.pairs.iter().enumerate() {
            let es = self
                .encoder
                .encode(&serialize_tuple(&dataset.table_a, p.left));
            let et = self
                .encoder
                .encode(&serialize_tuple(&dataset.table_b, p.right));
            let row = out.row_mut(i);
            for j in 0..d {
                row[j] = es[j];
                row[d + j] = et[j];
                row[2 * d + j] = (es[j] - et[j]).abs();
                row[3 * d + j] = es[j] * et[j];
            }
        }
        out
    }
}

impl Baseline for Ditto {
    fn name(&self) -> &'static str {
        "DITTO"
    }

    fn predict(&self, dataset: &Dataset, pairs: &PairSet) -> Vec<f32> {
        if pairs.is_empty() {
            return Vec::new();
        }
        let features = self.pair_features(dataset, pairs);
        let mut g = Graph::new();
        let xt = g.input(features);
        let logits = self.head.forward(&mut g, &self.store, xt);
        let probs = g.sigmoid(logits);
        g.value(probs).as_slice().to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vaer_data::domains::{Domain, DomainSpec, Scale};

    #[test]
    fn serialization_format() {
        let ds = DomainSpec::new(Domain::Beer, Scale::Tiny).generate(1);
        let s = serialize_tuple(&ds.table_a, 0);
        assert!(s.starts_with("col name val "));
        assert!(s.contains("col brewery val "));
    }

    #[test]
    fn learns_restaurants() {
        let ds = DomainSpec::new(Domain::Restaurants, Scale::Tiny).generate(1);
        let model = Ditto::train(&ds, &DittoConfig::fast()).unwrap();
        let report = model.evaluate(&ds, &ds.test_pairs);
        assert!(report.f1 > 0.5, "DITTO F1 = {report}");
        assert!(model.train_secs > 0.0);
    }

    #[test]
    fn rejects_single_class() {
        let mut ds = DomainSpec::new(Domain::Beer, Scale::Tiny).generate(2);
        ds.train_pairs.pairs.retain(|p| p.is_match);
        assert!(Ditto::train(&ds, &DittoConfig::fast()).is_err());
    }

    #[test]
    fn predictions_bounded() {
        let ds = DomainSpec::new(Domain::Music, Scale::Tiny).generate(4);
        let model = Ditto::train(&ds, &DittoConfig::fast()).unwrap();
        let probs = model.predict(&ds, &ds.test_pairs);
        assert!(probs.iter().all(|&p| (0.0..=1.0).contains(&p)));
    }
}
