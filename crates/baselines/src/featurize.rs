//! Bag-of-words featurisation for the end-to-end baselines.
//!
//! The original DeepER/DeepMatcher look token embeddings up by index; on
//! our tape-based autodiff, the differentiable equivalent is a dense
//! bag-of-words indicator row multiplied into the embedding parameter
//! (`batch x vocab` · `vocab x dim`). That keeps gradients flowing into
//! the (per-task!) embedding table — which is exactly the cost the paper
//! attributes to these systems.

use vaer_data::Table;
use vaer_linalg::Matrix;
use vaer_text::{tokenize, Vocab};

/// Fits a capped vocabulary over a dataset and renders attribute values
/// as normalised bag-of-words rows.
#[derive(Debug, Clone)]
pub struct BowFeaturizer {
    vocab: Vocab,
}

impl BowFeaturizer {
    /// Builds the vocabulary from both tables, keeping at most
    /// `max_vocab` tokens (most frequent first).
    pub fn fit(tables: &[&Table], max_vocab: usize) -> Self {
        let mut full = Vocab::new();
        for table in tables {
            for sentence in table.sentences() {
                for tok in tokenize(sentence) {
                    full.add(&tok);
                }
            }
        }
        // Keep the top `max_vocab` tokens by count.
        let mut ranked: Vec<(u32, u64)> = full.iter().map(|(id, _, count)| (id, count)).collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        ranked.truncate(max_vocab);
        let mut vocab = Vocab::new();
        for (id, _) in ranked {
            vocab.add(full.token(id));
        }
        Self { vocab }
    }

    /// Vocabulary size (the embedding table's row count).
    pub fn vocab_size(&self) -> usize {
        self.vocab.len()
    }

    /// Renders attribute `attr` of the given `rows` of `table` as an
    /// L1-normalised bag-of-words matrix (`rows.len() x vocab_size`).
    pub fn attr_bows(&self, table: &Table, rows: &[usize], attr: usize) -> Matrix {
        let mut out = Matrix::zeros(rows.len(), self.vocab_size().max(1));
        for (r, &row_idx) in rows.iter().enumerate() {
            let ids: Vec<u32> = tokenize(table.value(row_idx, attr))
                .iter()
                .filter_map(|t| self.vocab.get(t))
                .collect();
            if ids.is_empty() {
                continue;
            }
            let w = 1.0 / ids.len() as f32;
            let out_row = out.row_mut(r);
            for id in ids {
                out_row[id as usize] += w;
            }
        }
        out
    }

    /// Renders every attribute of a whole tuple as one concatenated
    /// bag-of-words row (used by pair-serialising models).
    pub fn tuple_bow(&self, table: &Table, row: usize) -> Vec<f32> {
        let mut out = vec![0.0f32; self.vocab_size().max(1)];
        let mut n = 0usize;
        for attr in 0..table.schema.arity() {
            for tok in tokenize(table.value(row, attr)) {
                if let Some(id) = self.vocab.get(&tok) {
                    out[id as usize] += 1.0;
                    n += 1;
                }
            }
        }
        if n > 0 {
            let w = 1.0 / n as f32;
            for v in &mut out {
                *v *= w;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vaer_data::Schema;

    fn demo_table() -> Table {
        let mut t = Table::new(Schema::new("d", &["name", "city"]));
        t.push(vec!["blue moon cafe".into(), "seattle".into()]);
        t.push(vec!["blue sky diner".into(), "portland".into()]);
        t
    }

    #[test]
    fn vocabulary_is_capped_by_frequency() {
        let t = demo_table();
        let f = BowFeaturizer::fit(&[&t], 3);
        assert_eq!(f.vocab_size(), 3);
        // "blue" appears twice — must survive the cap.
        let bows = f.attr_bows(&t, &[0, 1], 0);
        assert!(bows.row(0).iter().sum::<f32>() > 0.0);
        assert!(bows.row(1).iter().sum::<f32>() > 0.0);
    }

    #[test]
    fn bow_rows_are_l1_normalised() {
        let t = demo_table();
        let f = BowFeaturizer::fit(&[&t], 100);
        let bows = f.attr_bows(&t, &[0], 0);
        assert!((bows.row(0).iter().sum::<f32>() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn empty_and_oov_values_are_zero_rows() {
        let mut t = demo_table();
        t.push(vec![String::new(), "zzz unknown".into()]);
        let f = BowFeaturizer::fit(&[&demo_table()], 100);
        let bows = f.attr_bows(&t, &[2], 0);
        assert_eq!(bows.row(0).iter().sum::<f32>(), 0.0);
    }

    #[test]
    fn tuple_bow_covers_all_attributes() {
        let t = demo_table();
        let f = BowFeaturizer::fit(&[&t], 100);
        let bow = f.tuple_bow(&t, 0);
        let nonzero = bow.iter().filter(|&&v| v > 0.0).count();
        assert_eq!(nonzero, 4); // blue, moon, cafe, seattle
        assert!((bow.iter().sum::<f32>() - 1.0).abs() < 1e-5);
    }
}
