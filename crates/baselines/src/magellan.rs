//! Magellan-style classical baseline (Konda et al., PVLDB 2016).
//!
//! The paper excludes Magellan from its comparison because it is not a
//! deep-learning system, but a classical feature-based matcher is the
//! natural sanity baseline for any ER study: per-attribute string
//! similarities (Levenshtein, Jaccard, Jaro–Winkler, exact, numeric) fed
//! to a logistic-regression classifier. Cheap, strong on clean data,
//! brittle on dirty text — exactly the gap deep ER was invented to close.

use crate::{check_two_classes, Baseline, BaselineError};
use std::time::Instant;
use vaer_data::{Dataset, LabeledPair, PairSet};
use vaer_linalg::Matrix;
use vaer_nn::schedule::minibatches;
use vaer_nn::{Adam, Dense, Graph, Initializer, NnRng, Optimizer, ParamStore, SeedableRng};
use vaer_text::strsim::{
    exact, jaccard_tokens, jaro_winkler, levenshtein_similarity, numeric_similarity,
};

/// Number of similarity features per attribute.
pub const FEATURES_PER_ATTRIBUTE: usize = 6;

/// Magellan-style configuration.
#[derive(Debug, Clone)]
pub struct MagellanConfig {
    /// Logistic-regression training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MagellanConfig {
    fn default() -> Self {
        Self {
            epochs: 150,
            batch_size: 64,
            learning_rate: 5e-2,
            seed: 0x3A63,
        }
    }
}

/// The trained classical matcher.
pub struct Magellan {
    store: ParamStore,
    lr: Dense,
    arity: usize,
    /// Wall-clock training time in seconds.
    pub train_secs: f64,
}

/// The per-attribute similarity feature vector for one value pair.
pub fn value_features(a: &str, b: &str) -> [f32; FEATURES_PER_ATTRIBUTE] {
    let missing = if a.is_empty() || b.is_empty() {
        1.0
    } else {
        0.0
    };
    [
        levenshtein_similarity(a, b),
        jaccard_tokens(a, b),
        jaro_winkler(a, b),
        exact(a, b),
        numeric_similarity(a, b).unwrap_or(0.0),
        missing,
    ]
}

impl Magellan {
    /// Trains logistic regression over the similarity features.
    ///
    /// # Errors
    /// [`BaselineError::InsufficientData`] on empty/single-class input.
    pub fn train(dataset: &Dataset, config: &MagellanConfig) -> Result<Self, BaselineError> {
        check_two_classes(&dataset.train_pairs)?;
        // vaer-lint: allow(det-wallclock) -- train_secs is the reported quantity, not an input to the model
        let t0 = Instant::now();
        let arity = dataset.table_a.schema.arity();
        let mut rng = NnRng::seed_from_u64(config.seed);
        let mut store = ParamStore::new();
        let lr = Dense::new(
            &mut store,
            "magellan.lr",
            arity * FEATURES_PER_ATTRIBUTE,
            1,
            Initializer::Xavier,
            &mut rng,
        );
        let mut model = Self {
            store,
            lr,
            arity,
            train_secs: 0.0,
        };
        let features = model.features(dataset, &dataset.train_pairs.pairs);
        let labels: Vec<f32> = dataset
            .train_pairs
            .pairs
            .iter()
            .map(|p| if p.is_match { 1.0 } else { 0.0 })
            .collect();
        let mut adam = Adam::with_rate(config.learning_rate);
        for _epoch in 0..config.epochs {
            for batch in minibatches(labels.len(), config.batch_size, &mut rng) {
                let x = features.select_rows(&batch);
                let y =
                    Matrix::from_vec(batch.len(), 1, batch.iter().map(|&i| labels[i]).collect());
                let mut g = Graph::new();
                let xt = g.input(x);
                let logits = model.lr.forward(&mut g, &model.store, xt);
                let loss = g.bce_with_logits(logits, y);
                g.backward(loss);
                adam.step(&mut model.store, &g.param_grads());
            }
        }
        model.train_secs = t0.elapsed().as_secs_f64();
        Ok(model)
    }

    fn features(&self, dataset: &Dataset, pairs: &[LabeledPair]) -> Matrix {
        let mut out = Matrix::zeros(pairs.len(), self.arity * FEATURES_PER_ATTRIBUTE);
        for (i, p) in pairs.iter().enumerate() {
            let row = out.row_mut(i);
            for attr in 0..self.arity {
                let f = value_features(
                    dataset.table_a.value(p.left, attr),
                    dataset.table_b.value(p.right, attr),
                );
                row[attr * FEATURES_PER_ATTRIBUTE..(attr + 1) * FEATURES_PER_ATTRIBUTE]
                    .copy_from_slice(&f);
            }
        }
        out
    }
}

impl Baseline for Magellan {
    fn name(&self) -> &'static str {
        "Magellan"
    }

    fn predict(&self, dataset: &Dataset, pairs: &PairSet) -> Vec<f32> {
        if pairs.is_empty() {
            return Vec::new();
        }
        let features = self.features(dataset, &pairs.pairs);
        let mut g = Graph::new();
        let xt = g.input(features);
        let logits = self.lr.forward(&mut g, &self.store, xt);
        let probs = g.sigmoid(logits);
        g.value(probs).as_slice().to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vaer_data::domains::{Domain, DomainSpec, Scale};

    #[test]
    fn value_feature_sanity() {
        let f = value_features("blue moon cafe", "blue moon cafe");
        assert_eq!(f[0], 1.0); // levenshtein
        assert_eq!(f[1], 1.0); // jaccard
        assert_eq!(f[3], 1.0); // exact
        assert_eq!(f[5], 0.0); // missing
        let g = value_features("", "anything");
        assert_eq!(g[5], 1.0);
        let n = value_features("10.0", "10.0");
        assert_eq!(n[4], 1.0);
    }

    #[test]
    fn learns_clean_domain_well() {
        let ds = DomainSpec::new(Domain::Restaurants, Scale::Tiny).generate(1);
        let model = Magellan::train(&ds, &MagellanConfig::default()).unwrap();
        let report = model.evaluate(&ds, &ds.test_pairs);
        assert!(report.f1 > 0.6, "Magellan F1 = {report}");
    }

    #[test]
    fn rejects_single_class() {
        let mut ds = DomainSpec::new(Domain::Beer, Scale::Tiny).generate(2);
        ds.train_pairs.pairs.retain(|p| p.is_match);
        assert!(Magellan::train(&ds, &MagellanConfig::default()).is_err());
    }

    #[test]
    fn probabilities_bounded() {
        let ds = DomainSpec::new(Domain::Crm, Scale::Tiny).generate(3);
        let model = Magellan::train(&ds, &MagellanConfig::default()).unwrap();
        let probs = model.predict(&ds, &ds.test_pairs);
        assert!(probs.iter().all(|&p| (0.0..=1.0).contains(&p)));
    }
}
