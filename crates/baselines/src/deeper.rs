//! DeepER-style baseline (Ebraheem et al., PVLDB 2018).
//!
//! DeepER composes tuples from word embeddings (averaging or an RNN) and
//! classifies similarity features. This reimplementation uses the
//! averaging composition with a *trainable* embedding table optimised
//! end-to-end with the classifier — a per-task cost VAER avoids by
//! decoupling representation learning.

use crate::featurize::BowFeaturizer;
use crate::{check_two_classes, Baseline, BaselineError};
use std::time::Instant;
use vaer_data::{Dataset, PairSet};
use vaer_linalg::Matrix;
use vaer_nn::schedule::minibatches;
use vaer_nn::{
    Adam, Dense, Graph, Initializer, Mlp, MlpConfig, NnRng, Optimizer, ParamStore, SeedableRng,
    Tensor,
};

/// DeepER hyper-parameters.
#[derive(Debug, Clone)]
pub struct DeepErConfig {
    /// Embedding dimensionality.
    pub embed_dim: usize,
    /// Maximum vocabulary size.
    pub max_vocab: usize,
    /// Classifier hidden width.
    pub hidden: usize,
    /// Recurrent composition steps per attribute (the original DeepER
    /// composes token sequences with an RNN; each step is one application
    /// of the shared recurrent cell).
    pub recurrent_steps: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DeepErConfig {
    fn default() -> Self {
        Self {
            embed_dim: 48,
            max_vocab: 4000,
            hidden: 48,
            recurrent_steps: 8,
            epochs: 30,
            batch_size: 32,
            learning_rate: 3e-3,
            seed: 0xDEE9,
        }
    }
}

impl DeepErConfig {
    /// A fast configuration for unit tests.
    pub fn fast() -> Self {
        Self {
            embed_dim: 16,
            max_vocab: 800,
            hidden: 16,
            recurrent_steps: 4,
            epochs: 80,
            learning_rate: 1e-2,
            ..Self::default()
        }
    }
}

/// The trained DeepER-style model.
pub struct DeepEr {
    featurizer: BowFeaturizer,
    store: ParamStore,
    embed: Dense,
    cell: Dense,
    mlp: Mlp,
    arity: usize,
    config: DeepErConfig,
    /// Wall-clock training time in seconds.
    pub train_secs: f64,
}

impl DeepEr {
    /// Trains end-to-end on the dataset's training pairs.
    ///
    /// # Errors
    /// [`BaselineError::InsufficientData`] on empty/single-class input.
    pub fn train(dataset: &Dataset, config: &DeepErConfig) -> Result<Self, BaselineError> {
        check_two_classes(&dataset.train_pairs)?;
        // vaer-lint: allow(det-wallclock) -- train_secs is the reported quantity, not an input to the model
        let t0 = Instant::now();
        let featurizer =
            BowFeaturizer::fit(&[&dataset.table_a, &dataset.table_b], config.max_vocab);
        let arity = dataset.table_a.schema.arity();
        let mut rng = NnRng::seed_from_u64(config.seed);
        let mut store = ParamStore::new();
        // The "embedding table" is a bias-free dense layer over BoW rows.
        let embed = Dense::new(
            &mut store,
            "deeper.embed",
            featurizer.vocab_size().max(1),
            config.embed_dim,
            Initializer::Xavier,
            &mut rng,
        );
        let cell = Dense::new(
            &mut store,
            "deeper.rnn",
            config.embed_dim,
            config.embed_dim,
            Initializer::Xavier,
            &mut rng,
        );
        // Similarity features per attribute: |e_s - e_t| ⧺ e_s ⊙ e_t.
        let mlp = Mlp::new(
            &mut store,
            "deeper.clf",
            &MlpConfig::relu(vec![arity * 2 * config.embed_dim, config.hidden, 1]),
            &mut rng,
        );
        let mut model = Self {
            featurizer,
            store,
            embed,
            cell,
            mlp,
            arity,
            config: config.clone(),
            train_secs: 0.0,
        };
        let pairs = &dataset.train_pairs;
        let mut adam = Adam::with_rate(model.config.learning_rate);
        for _epoch in 0..model.config.epochs {
            for batch in minibatches(pairs.len(), model.config.batch_size, &mut rng) {
                let selected: Vec<_> = batch.iter().map(|&i| pairs.pairs[i]).collect();
                let labels: Vec<f32> = selected
                    .iter()
                    .map(|p| if p.is_match { 1.0 } else { 0.0 })
                    .collect();
                let mut g = Graph::new();
                let logits = model.forward(&mut g, dataset, &selected);
                let y = Matrix::from_vec(labels.len(), 1, labels);
                let loss = g.bce_with_logits(logits, y);
                g.backward(loss);
                adam.step(&mut model.store, &g.param_grads());
            }
        }
        model.train_secs = t0.elapsed().as_secs_f64();
        Ok(model)
    }

    /// RNN-style composition: embed, then apply the shared recurrent cell
    /// `h ← tanh(h W + e)` for `recurrent_steps` iterations.
    fn compose(&self, g: &mut Graph, bow: Tensor) -> Tensor {
        let e = self.embed.forward(g, &self.store, bow);
        let mut h = e;
        for _ in 0..self.config.recurrent_steps {
            let hw = self.cell.forward(g, &self.store, h);
            let hw = g.add(hw, e);
            h = g.tanh(hw);
        }
        h
    }

    fn forward(
        &self,
        g: &mut Graph,
        dataset: &Dataset,
        pairs: &[vaer_data::LabeledPair],
    ) -> Tensor {
        let lefts: Vec<usize> = pairs.iter().map(|p| p.left).collect();
        let rights: Vec<usize> = pairs.iter().map(|p| p.right).collect();
        let mut features = Vec::with_capacity(self.arity * 2);
        for attr in 0..self.arity {
            let bow_s = self.featurizer.attr_bows(&dataset.table_a, &lefts, attr);
            let bow_t = self.featurizer.attr_bows(&dataset.table_b, &rights, attr);
            let xs = g.input(bow_s);
            let xt = g.input(bow_t);
            let es = self.compose(g, xs);
            let et = self.compose(g, xt);
            // |diff| via relu(d) + relu(-d).
            let d = g.sub(es, et);
            let neg_d = g.scale(d, -1.0);
            let abs_pos = g.relu(d);
            let abs_neg = g.relu(neg_d);
            let abs = g.add(abs_pos, abs_neg);
            let prod = g.mul(es, et);
            features.push(abs);
            features.push(prod);
        }
        let feats = g.concat_cols(&features);
        self.mlp.forward(g, &self.store, feats)
    }
}

impl Baseline for DeepEr {
    fn name(&self) -> &'static str {
        "DER"
    }

    fn predict(&self, dataset: &Dataset, pairs: &PairSet) -> Vec<f32> {
        if pairs.is_empty() {
            return Vec::new();
        }
        let mut g = Graph::new();
        let logits = self.forward(&mut g, dataset, &pairs.pairs);
        let probs = g.sigmoid(logits);
        g.value(probs).as_slice().to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vaer_data::domains::{Domain, DomainSpec, Scale};

    #[test]
    fn learns_restaurants() {
        let ds = DomainSpec::new(Domain::Restaurants, Scale::Tiny).generate(1);
        let model = DeepEr::train(&ds, &DeepErConfig::fast()).unwrap();
        let report = model.evaluate(&ds, &ds.test_pairs);
        assert!(report.f1 > 0.5, "DeepER F1 = {report}");
        assert!(model.train_secs > 0.0);
    }

    #[test]
    fn rejects_single_class() {
        let mut ds = DomainSpec::new(Domain::Restaurants, Scale::Tiny).generate(2);
        ds.train_pairs.pairs.retain(|p| !p.is_match);
        assert!(matches!(
            DeepEr::train(&ds, &DeepErConfig::fast()),
            Err(BaselineError::InsufficientData(_))
        ));
    }

    #[test]
    fn probabilities_in_unit_interval() {
        let ds = DomainSpec::new(Domain::Beer, Scale::Tiny).generate(3);
        let model = DeepEr::train(&ds, &DeepErConfig::fast()).unwrap();
        let probs = model.predict(&ds, &ds.test_pairs);
        assert_eq!(probs.len(), ds.test_pairs.len());
        assert!(probs.iter().all(|&p| (0.0..=1.0).contains(&p)));
        assert!(model.predict(&ds, &PairSet::new()).is_empty());
    }
}
