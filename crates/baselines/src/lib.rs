//! Deep-ER baselines: the comparators of the paper's Tables V and VI.
//!
//! The paper compares VAER against DeepER (Ebraheem et al., PVLDB'18),
//! DeepMatcher (Mudgal et al., SIGMOD'18) and DITTO (Li et al., PVLDB'20).
//! The original systems are PyTorch codebases built on pretrained
//! embeddings/LMs; none is available offline, so this crate provides
//! reimplementations on the same `vaer-nn` substrate that keep each
//! system's *cost structure and evidence type* (see DESIGN.md):
//!
//! - [`DeepEr`] — trainable word-embedding table, per-attribute averaged
//!   tuple composition, similarity features (|diff|, ⊙), MLP classifier;
//!   everything optimised end-to-end per task.
//! - [`DeepMatcher`] — the heavier hybrid: *two* trainable embedding
//!   tables (word + context), per-attribute comparison sub-networks, then
//!   a fusion classifier. Deliberately the most expensive to train, as in
//!   the paper's Table VI.
//! - [`Ditto`] — pair serialisation (`COL c VAL v … [SEP] …`) encoded by
//!   the frozen BERT-style contextual encoder, with a deep fine-tuned
//!   classification head; mirrors DITTO's "pretrained LM + fine-tune"
//!   shape where only the head trains per task.
//! - [`Magellan`] — a classical non-deep extra: per-attribute string
//!   similarities + logistic regression. The paper excludes Magellan from
//!   its tables; we include it as the sanity baseline deep ER is measured
//!   against.
//!
//! All three implement [`Baseline`], and every `train` returns the model
//! plus wall-clock training seconds for the Table VI harness.

mod deeper;
mod deepmatcher;
mod ditto;
mod featurize;
mod magellan;

pub use deeper::{DeepEr, DeepErConfig};
pub use deepmatcher::{DeepMatcher, DeepMatcherConfig};
pub use ditto::{Ditto, DittoConfig};
pub use featurize::BowFeaturizer;
pub use magellan::{value_features, Magellan, MagellanConfig, FEATURES_PER_ATTRIBUTE};

use vaer_data::{Dataset, PairSet};
use vaer_stats::metrics::PrF1;

/// A trained ER baseline that scores labelled pairs.
pub trait Baseline {
    /// Display name matching the paper's column headers.
    fn name(&self) -> &'static str;

    /// Duplicate probabilities for the given pairs of the dataset the
    /// model was trained on.
    fn predict(&self, dataset: &Dataset, pairs: &PairSet) -> Vec<f32>;

    /// P/R/F1 at threshold 0.5.
    fn evaluate(&self, dataset: &Dataset, pairs: &PairSet) -> PrF1 {
        let probs = self.predict(dataset, pairs);
        let predicted: Vec<bool> = probs.iter().map(|&p| p > 0.5).collect();
        PrF1::from_labels(&predicted, &pairs.labels())
    }
}

/// Errors from baseline training.
#[derive(Debug)]
pub enum BaselineError {
    /// The training split was empty or single-class.
    InsufficientData(String),
}

impl std::fmt::Display for BaselineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BaselineError::InsufficientData(why) => write!(f, "insufficient data: {why}"),
        }
    }
}

impl std::error::Error for BaselineError {}

pub(crate) fn check_two_classes(pairs: &PairSet) -> Result<(), BaselineError> {
    if pairs.is_empty() {
        return Err(BaselineError::InsufficientData("no training pairs".into()));
    }
    if pairs.num_positive() == 0 || pairs.num_negative() == 0 {
        return Err(BaselineError::InsufficientData(
            "training pairs must contain both classes".into(),
        ));
    }
    Ok(())
}
