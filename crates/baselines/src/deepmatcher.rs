//! DeepMatcher-style baseline (Mudgal et al., SIGMOD 2018) — the "hybrid"
//! design point.
//!
//! DeepMatcher's hybrid model learns attribute summarisation *and*
//! comparison jointly, which makes it the most accurate and the most
//! expensive of the paper's comparators (Table VI). This reimplementation
//! keeps that structure: two trainable embedding tables (a word table and
//! a "context" table whose gated combination stands in for the RNN/
//! attention summariser), a per-attribute comparison sub-network, and a
//! fusion classifier — all optimised end-to-end per task.

use crate::featurize::BowFeaturizer;
use crate::{check_two_classes, Baseline, BaselineError};
use std::time::Instant;
use vaer_data::{Dataset, PairSet};
use vaer_linalg::Matrix;
use vaer_nn::schedule::minibatches;
use vaer_nn::{
    Adam, Dense, Graph, Initializer, Mlp, MlpConfig, NnRng, Optimizer, ParamStore, SeedableRng,
    Tensor,
};

/// DeepMatcher hyper-parameters.
#[derive(Debug, Clone)]
pub struct DeepMatcherConfig {
    /// Embedding dimensionality.
    pub embed_dim: usize,
    /// Maximum vocabulary size.
    pub max_vocab: usize,
    /// Per-attribute comparison network width.
    pub compare_hidden: usize,
    /// Fusion classifier width.
    pub fusion_hidden: usize,
    /// Recurrent summarisation steps (the original hybrid model runs an
    /// RNN-with-attention summariser over every attribute value).
    pub recurrent_steps: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DeepMatcherConfig {
    fn default() -> Self {
        Self {
            embed_dim: 48,
            max_vocab: 4000,
            compare_hidden: 32,
            fusion_hidden: 48,
            recurrent_steps: 12,
            epochs: 40,
            batch_size: 32,
            learning_rate: 3e-3,
            seed: 0xD33D,
        }
    }
}

impl DeepMatcherConfig {
    /// A fast configuration for unit tests.
    pub fn fast() -> Self {
        Self {
            embed_dim: 16,
            max_vocab: 800,
            compare_hidden: 12,
            fusion_hidden: 16,
            recurrent_steps: 4,
            epochs: 60,
            learning_rate: 1e-2,
            ..Self::default()
        }
    }
}

/// The trained DeepMatcher-style model.
pub struct DeepMatcher {
    featurizer: BowFeaturizer,
    store: ParamStore,
    word_embed: Dense,
    ctx_embed: Dense,
    gate: Dense,
    compare: Vec<Mlp>,
    fusion: Mlp,
    arity: usize,
    config: DeepMatcherConfig,
    /// Wall-clock training time in seconds.
    pub train_secs: f64,
}

impl DeepMatcher {
    /// Trains end-to-end on the dataset's training pairs.
    ///
    /// # Errors
    /// [`BaselineError::InsufficientData`] on empty/single-class input.
    pub fn train(dataset: &Dataset, config: &DeepMatcherConfig) -> Result<Self, BaselineError> {
        check_two_classes(&dataset.train_pairs)?;
        // vaer-lint: allow(det-wallclock) -- train_secs is the reported quantity, not an input to the model
        let t0 = Instant::now();
        let featurizer =
            BowFeaturizer::fit(&[&dataset.table_a, &dataset.table_b], config.max_vocab);
        let arity = dataset.table_a.schema.arity();
        let mut rng = NnRng::seed_from_u64(config.seed);
        let mut store = ParamStore::new();
        let vocab = featurizer.vocab_size().max(1);
        let word_embed = Dense::new(
            &mut store,
            "dm.word",
            vocab,
            config.embed_dim,
            Initializer::Xavier,
            &mut rng,
        );
        let ctx_embed = Dense::new(
            &mut store,
            "dm.ctx",
            vocab,
            config.embed_dim,
            Initializer::Xavier,
            &mut rng,
        );
        let gate = Dense::new(
            &mut store,
            "dm.gate",
            config.embed_dim,
            config.embed_dim,
            Initializer::Xavier,
            &mut rng,
        );
        let compare = (0..arity)
            .map(|i| {
                Mlp::new(
                    &mut store,
                    &format!("dm.cmp.{i}"),
                    &MlpConfig::relu(vec![2 * config.embed_dim, config.compare_hidden]),
                    &mut rng,
                )
            })
            .collect();
        let fusion = Mlp::new(
            &mut store,
            "dm.fusion",
            &MlpConfig::relu(vec![arity * config.compare_hidden, config.fusion_hidden, 1]),
            &mut rng,
        );
        let mut model = Self {
            featurizer,
            store,
            word_embed,
            ctx_embed,
            gate,
            compare,
            fusion,
            arity,
            config: config.clone(),
            train_secs: 0.0,
        };
        let pairs = &dataset.train_pairs;
        let mut adam = Adam::with_rate(model.config.learning_rate);
        for _epoch in 0..model.config.epochs {
            for batch in minibatches(pairs.len(), model.config.batch_size, &mut rng) {
                let selected: Vec<_> = batch.iter().map(|&i| pairs.pairs[i]).collect();
                let labels: Vec<f32> = selected
                    .iter()
                    .map(|p| if p.is_match { 1.0 } else { 0.0 })
                    .collect();
                let mut g = Graph::new();
                let logits = model.forward(&mut g, dataset, &selected);
                let y = Matrix::from_vec(labels.len(), 1, labels);
                let loss = g.bce_with_logits(logits, y);
                g.backward(loss);
                adam.step(&mut model.store, &g.param_grads());
            }
        }
        model.train_secs = t0.elapsed().as_secs_f64();
        Ok(model)
    }

    /// Gated summariser: `e = w ⊙ σ(gate(c)) + c ⊙ (1 - σ(gate(c)))` —
    /// the cheap stand-in for DeepMatcher's RNN/attention summary.
    fn summarise(&self, g: &mut Graph, bow: Tensor) -> Tensor {
        let w = self.word_embed.forward(g, &self.store, bow);
        let c = self.ctx_embed.forward(g, &self.store, bow);
        // Recurrent refinement of the context summary (the RNN part of the
        // hybrid summariser).
        let mut h = c;
        for _ in 0..self.config.recurrent_steps {
            let hg = self.gate.forward(g, &self.store, h);
            let hg = g.add(hg, c);
            h = g.tanh(hg);
        }
        let gate_logits = self.gate.forward(g, &self.store, h);
        let gate = g.sigmoid(gate_logits);
        let gated_w = g.mul(w, gate);
        let ones_shape = g.value(gate).shape();
        let ones = g.input(Matrix::filled(ones_shape.0, ones_shape.1, 1.0));
        let inv_gate = g.sub(ones, gate);
        let gated_c = g.mul(h, inv_gate);
        g.add(gated_w, gated_c)
    }

    fn forward(
        &self,
        g: &mut Graph,
        dataset: &Dataset,
        pairs: &[vaer_data::LabeledPair],
    ) -> Tensor {
        let lefts: Vec<usize> = pairs.iter().map(|p| p.left).collect();
        let rights: Vec<usize> = pairs.iter().map(|p| p.right).collect();
        let mut per_attr = Vec::with_capacity(self.arity);
        for attr in 0..self.arity {
            let bow_s = g.input(self.featurizer.attr_bows(&dataset.table_a, &lefts, attr));
            let bow_t = g.input(self.featurizer.attr_bows(&dataset.table_b, &rights, attr));
            let es = self.summarise(g, bow_s);
            let et = self.summarise(g, bow_t);
            let d = g.sub(es, et);
            let neg_d = g.scale(d, -1.0);
            let abs = {
                let p = g.relu(d);
                let n = g.relu(neg_d);
                g.add(p, n)
            };
            let prod = g.mul(es, et);
            let feats = g.concat_cols(&[abs, prod]);
            let cmp = self.compare[attr].forward(g, &self.store, feats);
            per_attr.push(g.relu(cmp));
        }
        let fused = g.concat_cols(&per_attr);
        self.fusion.forward(g, &self.store, fused)
    }
}

impl Baseline for DeepMatcher {
    fn name(&self) -> &'static str {
        "DM"
    }

    fn predict(&self, dataset: &Dataset, pairs: &PairSet) -> Vec<f32> {
        if pairs.is_empty() {
            return Vec::new();
        }
        let mut g = Graph::new();
        let logits = self.forward(&mut g, dataset, &pairs.pairs);
        let probs = g.sigmoid(logits);
        g.value(probs).as_slice().to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deeper::{DeepEr, DeepErConfig};
    use vaer_data::domains::{Domain, DomainSpec, Scale};

    #[test]
    fn learns_restaurants() {
        let ds = DomainSpec::new(Domain::Restaurants, Scale::Tiny).generate(1);
        let model = DeepMatcher::train(&ds, &DeepMatcherConfig::fast()).unwrap();
        let report = model.evaluate(&ds, &ds.test_pairs);
        assert!(report.f1 > 0.5, "DeepMatcher F1 = {report}");
    }

    #[test]
    fn heavier_than_deeper() {
        // Table VI shape: DM trains slower than DER on the same data.
        let ds = DomainSpec::new(Domain::Citations1, Scale::Tiny).generate(2);
        let dm = DeepMatcher::train(&ds, &DeepMatcherConfig::default()).unwrap();
        let der = DeepEr::train(&ds, &DeepErConfig::default()).unwrap();
        assert!(
            dm.train_secs > der.train_secs,
            "DM {:.3}s vs DER {:.3}s",
            dm.train_secs,
            der.train_secs
        );
    }

    #[test]
    fn rejects_empty_training() {
        let mut ds = DomainSpec::new(Domain::Beer, Scale::Tiny).generate(3);
        ds.train_pairs.pairs.clear();
        assert!(DeepMatcher::train(&ds, &DeepMatcherConfig::fast()).is_err());
    }
}
