//! `vaer-obs` — dependency-free observability for the VAER workspace.
//!
//! Three layers, all behind one env knob (`VAER_OBS=off|summary|trace`,
//! default `off`):
//!
//! 1. **Spans** — RAII guards ([`span`] / [`span!`]) recording wall-time,
//!    thread slot, and parent span. Durations always feed a per-name
//!    [`Histogram`]; at `trace` level each span is additionally pushed to
//!    the global collector as an individual [`SpanRecord`].
//! 2. **Metrics** — a fixed-capacity registry of named
//!    [`Counter`]s / [`Gauge`]s / [`Histogram`]s backed by static atomics:
//!    registration takes a lock once, but recording through a handle is
//!    lock-free and allocation-free.
//! 3. **Events** — point-in-time records with typed fields
//!    ([`event`]), e.g. one `al.round` per active-learning iteration.
//!
//! When the level is `off` every recording entry point reduces to a single
//! relaxed atomic load and an early return: no clock reads, no allocation,
//! no lock. This is the contract the pooled-tape zero-alloc test and the
//! micro bench assert.
//!
//! Snapshots are taken with [`ObsSink::snapshot`] and exported as JSONL
//! ([`ObsSink::write_jsonl`], one JSON object per line) or rendered as a
//! human table ([`ObsSink::summary`]). See DESIGN.md §9 for the schema.

pub mod alloc;
mod collect;
pub mod json;
pub mod metrics;
pub mod registry;
mod sink;
mod trace;

pub use alloc::AllocStats;
pub use collect::{records_len, EventRecord, SpanRecord, Value};
pub use metrics::{counter, gauge, histogram, Counter, Gauge, Histogram};
pub use registry::{ENV_KNOBS, NAME_PREFIXES};
pub use sink::{HistSnapshot, ObsSink};

use std::sync::atomic::{AtomicU8, Ordering};

/// Telemetry verbosity. Resolved once from `VAER_OBS` on first use;
/// overridable programmatically with [`set_level`] (tests, benches).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// Nothing is recorded; hot paths pay one relaxed load.
    Off = 0,
    /// Metrics and events are recorded; spans feed duration histograms
    /// but are not stored individually.
    Summary = 1,
    /// Everything in `summary`, plus one collector record per span.
    Trace = 2,
}

impl Level {
    /// Lower-case name, matching the `VAER_OBS` values.
    pub fn name(self) -> &'static str {
        match self {
            Level::Off => "off",
            Level::Summary => "summary",
            Level::Trace => "trace",
        }
    }
}

/// Sentinel meaning "not yet resolved from the environment".
const LEVEL_UNSET: u8 = u8::MAX;

static LEVEL: AtomicU8 = AtomicU8::new(LEVEL_UNSET);

/// Current telemetry level (env-resolved on first call).
#[inline]
pub fn level() -> Level {
    match LEVEL.load(Ordering::Relaxed) {
        0 => Level::Off,
        1 => Level::Summary,
        2 => Level::Trace,
        _ => init_level(),
    }
}

#[cold]
fn init_level() -> Level {
    let lvl = match std::env::var("VAER_OBS").as_deref() {
        Ok("summary") => Level::Summary,
        Ok("trace") => Level::Trace,
        // Unset, "off", or anything unrecognised: stay dark.
        _ => Level::Off,
    };
    LEVEL.store(lvl as u8, Ordering::Relaxed);
    lvl
}

/// Overrides the level programmatically (wins over `VAER_OBS`).
pub fn set_level(level: Level) {
    LEVEL.store(level as u8, Ordering::Relaxed);
}

/// True when anything at all should be recorded (`summary` or `trace`).
/// One relaxed load — safe to call on the hottest paths.
#[inline]
pub fn enabled() -> bool {
    level() >= Level::Summary
}

/// True only at `trace` level (per-span records, verbose exports).
#[inline]
pub fn trace_enabled() -> bool {
    level() == Level::Trace
}

/// Allocator-hook view of the level: a single raw load with NO env
/// fallback. `init_level` reads `VAER_OBS` via `std::env::var`, which
/// allocates — calling it from inside the allocator would recurse — so
/// the counting hook treats an unresolved level as off and waits for
/// the first ordinary probe (or [`set_level`]) to resolve it. This is
/// the "hook ordering contract" of DESIGN.md §14.
#[inline]
pub(crate) fn counting_enabled() -> bool {
    matches!(LEVEL.load(Ordering::Relaxed), 1 | 2)
}

/// Starts a span; the returned guard records the span when dropped.
///
/// When the level is `off` this returns an inert guard without reading
/// the clock or touching any global state.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard(None);
    }
    SpanGuard(Some(collect::start_span(name)))
}

/// RAII span guard: drop it to close the span. See [`span`].
#[must_use = "a span measures the scope it is alive for; bind it to a local"]
pub struct SpanGuard(Option<collect::ActiveSpan>);

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(active) = self.0.take() {
            collect::finish_span(active);
        }
    }
}

/// Expression form of [`span`]: `let _s = vaer_obs::span!("pipeline.fit");`
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span($name)
    };
}

/// Records a point-in-time event with typed fields.
///
/// The field slice lives on the caller's stack and is only cloned when
/// telemetry is enabled, so numeric fields cost nothing at `off`. Callers
/// passing [`Value::Str`] should gate construction on [`enabled`] to keep
/// the off path allocation-free.
#[inline]
pub fn event(name: &'static str, fields: &[(&'static str, Value)]) {
    if !enabled() {
        return;
    }
    collect::push_event(name, fields);
}

/// Clears all collector records and zeroes every metric value. Registered
/// names (and therefore existing handles) stay valid.
pub fn reset() {
    collect::reset_records();
    metrics::reset_values();
}

#[cfg(test)]
mod tests {
    use super::*;

    // The only level-mutating test in this crate: unit tests share one
    // process, so level toggling is confined to this single #[test].
    #[test]
    fn smoke_span_event_metric_roundtrip() {
        set_level(Level::Trace);
        reset();
        let c = counter("obs.test.counter");
        c.add(2);
        c.add(3);
        let g = gauge("obs.test.gauge");
        g.set(1.5);
        let h = histogram("obs.test.hist");
        h.record_nanos(2048);
        {
            let _outer = span("obs.test.outer");
            let _inner = span!("obs.test.inner");
            // Give the allocation accounting something to see.
            let ballast: Vec<u8> = Vec::with_capacity(4096);
            drop(ballast);
            event(
                "obs.test.event",
                &[("k", Value::U64(7)), ("f", Value::F64(0.5))],
            );
        }
        let sink = ObsSink::snapshot();
        assert_eq!(sink.counter("obs.test.counter"), 5);
        assert_eq!(c.get(), 5);
        assert!((g.get() - 1.5).abs() < 1e-12);
        let hist = sink
            .histograms
            .iter()
            .find(|h| h.name == "obs.test.hist")
            .unwrap();
        assert_eq!(hist.count, 1);
        assert_eq!(hist.sum_nanos, 2048);
        let spans: Vec<_> = sink.spans.iter().map(|s| s.name).collect();
        assert!(spans.contains(&"obs.test.outer"));
        assert!(spans.contains(&"obs.test.inner"));
        let inner = sink
            .spans
            .iter()
            .find(|s| s.name == "obs.test.inner")
            .unwrap();
        let outer = sink
            .spans
            .iter()
            .find(|s| s.name == "obs.test.outer")
            .unwrap();
        assert_eq!(inner.parent, outer.id, "inner span must nest under outer");
        assert_eq!(outer.parent, 0, "outer span is a root");
        assert!(outer.allocs >= 1, "outer span saw the ballast alloc");
        assert!(outer.bytes >= 4096, "outer span counted ballast bytes");
        if cfg!(target_os = "linux") {
            assert!(outer.rss_peak > 0, "span carries a VmHWM sample");
        }
        let outer_hist = sink
            .histograms
            .iter()
            .find(|h| h.name == "obs.test.outer")
            .unwrap();
        assert!(outer_hist.allocs >= 1 && outer_hist.bytes >= 4096);
        let ev = sink.events_named("obs.test.event").next().unwrap();
        assert_eq!(ev.u64("k"), Some(7));
        assert_eq!(ev.f64("f"), Some(0.5));

        let mut buf = Vec::new();
        sink.write_jsonl(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(!text.is_empty());
        for line in text.lines() {
            assert!(json::is_valid(line), "invalid JSONL line: {line}");
        }
        assert!(sink.summary().contains("obs.test.counter"));

        // Off: nothing records, nothing accumulates.
        set_level(Level::Off);
        reset();
        c.add(10);
        h.record_nanos(1);
        event("obs.test.event", &[]);
        let _dead = span("obs.test.dead");
        drop(_dead);
        assert_eq!(records_len(), 0);
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn handles_are_stable_across_lookups() {
        let a = counter("obs.test.stable");
        let b = counter("obs.test.stable");
        assert_eq!(a.index(), b.index());
    }

    #[test]
    fn level_names_round_trip() {
        assert_eq!(Level::Off.name(), "off");
        assert_eq!(Level::Summary.name(), "summary");
        assert_eq!(Level::Trace.name(), "trace");
        assert!(Level::Trace > Level::Summary && Level::Summary > Level::Off);
    }
}
