//! Allocation accounting: a counting `#[global_allocator]` wrapper
//! around [`System`], plus a Linux `/proc/self/status` RSS sampler.
//!
//! Every crate that links `vaer-obs` (the whole workspace) routes heap
//! traffic through [`CountingAlloc`]. The wrapper obeys a strict
//! **hook ordering contract** (DESIGN.md §14):
//!
//! 1. It never takes a lock, touches the metric registry, or allocates —
//!    only relaxed atomic RMWs on private statics. Anything else could
//!    re-enter the allocator (deadlock or unbounded recursion).
//! 2. It never *resolves* the telemetry level: [`crate::init_level`]
//!    reads `VAER_OBS` through `std::env::var`, which allocates, so the
//!    hook reads the raw level atomic and treats "unset" as off.
//!    Counting therefore starts at the first non-allocator probe (or
//!    [`crate::set_level`] call) that resolves the level.
//! 3. When the level is off (or unresolved) the hook is a passthrough:
//!    one relaxed load, one predictable branch, no other work. The micro
//!    bench enforces this costs ≤ 2% over calling [`System`] directly.
//!
//! Counter semantics: `allocs`/`bytes` are monotonic totals of
//! successful allocations (a `realloc` counts as one allocation of the
//! new size); `current` tracks live bytes and `heap_peak` its high-water
//! mark. Because counting can toggle mid-run, frees of blocks allocated
//! while counting was off can transiently exceed allocations; `current`
//! is clamped at zero on read instead of underflowing.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static FREES: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);
static CURRENT: AtomicI64 = AtomicI64::new(0);
static HEAP_PEAK: AtomicI64 = AtomicI64::new(0);

/// Counting allocator wrapper, installed as the workspace-wide
/// `#[global_allocator]` by this crate.
pub struct CountingAlloc;

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[inline]
fn note_alloc(size: usize) {
    ALLOCS.fetch_add(1, Ordering::Relaxed);
    BYTES.fetch_add(size as u64, Ordering::Relaxed);
    let now = CURRENT.fetch_add(size as i64, Ordering::Relaxed) + size as i64;
    HEAP_PEAK.fetch_max(now, Ordering::Relaxed);
}

#[inline]
fn note_free(size: usize) {
    FREES.fetch_add(1, Ordering::Relaxed);
    CURRENT.fetch_sub(size as i64, Ordering::Relaxed);
}

// SAFETY: every method forwards the caller's layout verbatim to
// `System`, which upholds the `GlobalAlloc` contract; the bookkeeping
// added around the forwarded calls performs only relaxed atomic RMWs on
// plain counters (no allocation, no locks, no reentry — the hook
// ordering contract documented on this module).
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: caller upholds `alloc`'s contract; forwarded to `System`.
    #[inline]
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() && crate::counting_enabled() {
            note_alloc(layout.size());
        }
        p
    }

    // SAFETY: caller guarantees `ptr` came from this allocator with
    // `layout`; forwarded to `System` unchanged.
    #[inline]
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        if crate::counting_enabled() {
            note_free(layout.size());
        }
        System.dealloc(ptr, layout);
    }

    // SAFETY: caller upholds `alloc_zeroed`'s contract; forwarded to
    // `System`.
    #[inline]
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        if !p.is_null() && crate::counting_enabled() {
            note_alloc(layout.size());
        }
        p
    }

    // SAFETY: caller guarantees `ptr`/`layout` describe a live block from
    // this allocator; forwarded to `System` unchanged. On success the
    // bookkeeping treats the move as one allocation of the new size whose
    // live-byte delta is `new_size - old_size`.
    #[inline]
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() && crate::counting_enabled() {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
            let delta = new_size as i64 - layout.size() as i64;
            let now = CURRENT.fetch_add(delta, Ordering::Relaxed) + delta;
            HEAP_PEAK.fetch_max(now, Ordering::Relaxed);
        }
        p
    }
}

/// Point-in-time allocator counters (all zero until counting is enabled
/// by a `summary`/`trace` telemetry level).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AllocStats {
    /// Successful allocations (including reallocs) since process start.
    pub allocs: u64,
    /// Deallocations since process start.
    pub frees: u64,
    /// Total bytes handed out across all allocations (monotonic).
    pub bytes: u64,
    /// Live heap bytes right now (clamped at zero).
    pub current: u64,
    /// High-water mark of `current`.
    pub heap_peak: u64,
}

/// Snapshot of the allocator counters. Two relaxed loads per field —
/// safe to call from hot paths (span creation does).
#[inline]
pub fn stats() -> AllocStats {
    AllocStats {
        allocs: ALLOCS.load(Ordering::Relaxed),
        frees: FREES.load(Ordering::Relaxed),
        bytes: BYTES.load(Ordering::Relaxed),
        current: CURRENT.load(Ordering::Relaxed).max(0) as u64,
        heap_peak: HEAP_PEAK.load(Ordering::Relaxed).max(0) as u64,
    }
}

/// Peak resident set size (`VmHWM`) in bytes, from `/proc/self/status`.
/// Returns 0 when the information is unavailable (non-Linux, or a
/// restricted `/proc`). The read allocates a transient buffer, so span
/// accounting samples RSS *after* computing its allocation deltas.
pub fn rss_peak_bytes() -> u64 {
    read_status_kb("VmHWM:").map_or(0, |kb| kb * 1024)
}

/// Current resident set size (`VmRSS`) in bytes; 0 when unavailable.
pub fn rss_current_bytes() -> u64 {
    read_status_kb("VmRSS:").map_or(0, |kb| kb * 1024)
}

#[cfg(target_os = "linux")]
fn read_status_kb(key: &str) -> Option<u64> {
    let text = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix(key) {
            // Format: "VmHWM:	   12345 kB".
            return rest.trim().trim_end_matches("kB").trim().parse().ok();
        }
    }
    None
}

#[cfg(not(target_os = "linux"))]
fn read_status_kb(_key: &str) -> Option<u64> {
    None
}

/// Publishes the allocator totals and RSS readings as `mem.*` gauges
/// (no-op while telemetry is off). [`crate::ObsSink::snapshot`] calls
/// this so every snapshot carries the memory picture at freeze time.
pub fn publish_gauges() {
    if !crate::enabled() {
        return;
    }
    let s = stats();
    crate::gauge("mem.allocs").set(s.allocs as f64);
    crate::gauge("mem.bytes").set(s.bytes as f64);
    crate::gauge("mem.heap.current").set(s.current as f64);
    crate::gauge("mem.heap.peak").set(s.heap_peak as f64);
    crate::gauge("mem.rss.current").set(rss_current_bytes() as f64);
    crate::gauge("mem.rss.peak").set(rss_peak_bytes() as f64);
}

#[cfg(test)]
mod tests {
    use super::*;

    // Counting is toggled by the crate-level smoke test (the single
    // level-mutating test); here we only exercise the always-available
    // surfaces.
    #[test]
    fn stats_are_monotone_and_clamped() {
        let a = stats();
        let b = stats();
        assert!(b.allocs >= a.allocs);
        assert!(b.bytes >= a.bytes);
        // Clamped reads can never underflow past zero.
        assert!(b.current <= b.bytes.max(1) || b.bytes == 0);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn rss_sampler_reads_proc() {
        assert!(rss_current_bytes() > 0, "VmRSS should be readable");
        assert!(rss_peak_bytes() >= rss_current_bytes() / 2);
    }
}
