//! Chrome Trace Event export: renders an [`ObsSink`]'s span tree and
//! events as the JSON understood by Perfetto and `chrome://tracing`.
//!
//! Mapping (Trace Event Format, JSON Object variant):
//!
//! * Each [`SpanRecord`] becomes one complete event (`"ph":"X"`) with
//!   `ts`/`dur` in microseconds since the obs epoch, `pid` fixed at 1,
//!   and `tid` set to the recording thread's slot. The span id, parent
//!   id, and memory accounting ride along in `args`, so parent/child
//!   structure survives even across threads (the viewer's visual
//!   nesting is per-`tid` stack-based, which matches how spans nest on
//!   one thread).
//! * Each [`EventRecord`] becomes a thread-scoped instant event
//!   (`"ph":"i"`, `"s":"t"`) with its typed fields in `args`.
//! * One metadata event (`"ph":"M"`, `thread_name`) names every thread
//!   lane that appears, so lanes read `vaer-thread-N` in the UI.
//!
//! Output is deterministic for a given sink: spans and events are
//! emitted in the sink's (time-sorted) order and lanes in ascending
//! slot order — the golden test pins the exact bytes.

use crate::collect::Value;
use crate::json;
use crate::sink::ObsSink;
use std::io::{self, Write};

pub(crate) fn write<W: Write>(sink: &ObsSink, w: &mut W) -> io::Result<()> {
    write!(w, "{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[")?;
    let mut first = true;
    let sep = |w: &mut W, first: &mut bool| -> io::Result<()> {
        if *first {
            *first = false;
            Ok(())
        } else {
            write!(w, ",")
        }
    };

    let mut threads: Vec<u32> = sink
        .spans
        .iter()
        .map(|s| s.thread)
        .chain(sink.events.iter().map(|e| e.thread))
        .collect();
    threads.sort_unstable();
    threads.dedup();
    for t in threads {
        sep(w, &mut first)?;
        write!(
            w,
            "{{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,\"tid\":{t},\"args\":{{\"name\":\"vaer-thread-{t}\"}}}}"
        )?;
    }

    for s in &sink.spans {
        sep(w, &mut first)?;
        write!(
            w,
            "{{\"ph\":\"X\",\"name\":\"{}\",\"cat\":\"span\",\"pid\":1,\"tid\":{},\"ts\":{},\"dur\":{},\"args\":{{\"id\":{},\"parent\":{},\"allocs\":{},\"bytes\":{},\"rss_peak\":{}}}}}",
            json::escape(s.name),
            s.thread,
            s.start_us,
            s.dur_us,
            s.id,
            s.parent,
            s.allocs,
            s.bytes,
            s.rss_peak
        )?;
    }

    for e in &sink.events {
        sep(w, &mut first)?;
        write!(
            w,
            "{{\"ph\":\"i\",\"name\":\"{}\",\"cat\":\"event\",\"pid\":1,\"tid\":{},\"ts\":{},\"s\":\"t\",\"args\":{{",
            json::escape(e.name),
            e.thread,
            e.at_us
        )?;
        for (i, (key, value)) in e.fields.iter().enumerate() {
            if i > 0 {
                write!(w, ",")?;
            }
            write!(w, "\"{}\":", json::escape(key))?;
            match value {
                Value::U64(v) => write!(w, "{v}")?,
                Value::F64(v) => write!(w, "{}", json::number(*v))?,
                Value::Str(v) => write!(w, "\"{}\"", json::escape(v))?,
            }
        }
        write!(w, "}}}}")?;
    }

    write!(w, "]}}")
}
