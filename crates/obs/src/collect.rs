//! Lock-sharded global collector for span and event records, plus the
//! thread-local machinery behind span parenting and thread slots.
//!
//! Threads are assigned small sequential *slots* on first contact (the
//! worker-pool threads of `vaer_linalg::runtime` are short-lived, so raw
//! `ThreadId`s would be both unstable-API and unbounded). A thread's slot
//! picks its collector shard, so recording threads rarely contend on the
//! same mutex.

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Typed event-field value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// Unsigned integer (counts, ids, label budgets).
    U64(u64),
    /// Float (losses, rates, seconds).
    F64(f64),
    /// Short string (dataset names, modes). Construct only when
    /// [`crate::enabled`] to keep the off path allocation-free.
    Str(String),
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(u64::from(v))
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::U64(u64::from(v))
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<f32> for Value {
    fn from(v: f32) -> Self {
        Value::F64(f64::from(v))
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

/// A recorded point-in-time event.
#[derive(Clone, Debug)]
pub struct EventRecord {
    /// Event name, e.g. `al.round`.
    pub name: &'static str,
    /// Recording thread's slot.
    pub thread: u32,
    /// Microseconds since the process-wide obs epoch.
    pub at_us: u64,
    /// Typed fields in caller order.
    pub fields: Vec<(&'static str, Value)>,
}

impl EventRecord {
    /// Looks up a field by key.
    pub fn field(&self, key: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }

    /// Unsigned-integer field accessor.
    pub fn u64(&self, key: &str) -> Option<u64> {
        match self.field(key)? {
            Value::U64(v) => Some(*v),
            _ => None,
        }
    }

    /// Float field accessor (also widens `U64` fields).
    pub fn f64(&self, key: &str) -> Option<f64> {
        match self.field(key)? {
            Value::F64(v) => Some(*v),
            Value::U64(v) => Some(*v as f64),
            Value::Str(_) => None,
        }
    }

    /// String field accessor.
    pub fn str(&self, key: &str) -> Option<&str> {
        match self.field(key)? {
            Value::Str(v) => Some(v.as_str()),
            _ => None,
        }
    }
}

/// A completed span (recorded individually only at `trace` level).
#[derive(Clone, Copy, Debug)]
pub struct SpanRecord {
    /// Span name, e.g. `pipeline.repr`.
    pub name: &'static str,
    /// Process-unique span id (never 0).
    pub id: u64,
    /// Enclosing span's id on the same thread, or 0 for a root span.
    pub parent: u64,
    /// Recording thread's slot.
    pub thread: u32,
    /// Microseconds since the process-wide obs epoch.
    pub start_us: u64,
    /// Wall-clock duration in microseconds.
    pub dur_us: u64,
    /// Heap allocations performed while the span was open (process-wide
    /// delta of the counting allocator, so concurrent threads bleed in).
    pub allocs: u64,
    /// Heap bytes allocated while the span was open (same caveat).
    pub bytes: u64,
    /// Peak RSS (`VmHWM`) in bytes sampled when the span closed; 0 when
    /// the sampler is unavailable.
    pub rss_peak: u64,
}

pub(crate) enum Record {
    Span(SpanRecord),
    Event(EventRecord),
}

const SHARDS: usize = 8;

#[allow(clippy::declare_interior_mutable_const)]
const EMPTY_SHARD: Mutex<Vec<Record>> = Mutex::new(Vec::new());

static COLLECTOR: [Mutex<Vec<Record>>; SHARDS] = [EMPTY_SHARD; SHARDS];

static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Microseconds since the first obs clock read in this process.
pub(crate) fn now_us() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_micros() as u64
}

static NEXT_THREAD: AtomicU32 = AtomicU32::new(0);

thread_local! {
    static THREAD_SLOT: Cell<u32> = const { Cell::new(u32::MAX) };
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// Small sequential id for the calling thread, assigned on first use.
pub(crate) fn thread_slot() -> u32 {
    THREAD_SLOT.with(|slot| {
        let v = slot.get();
        if v != u32::MAX {
            v
        } else {
            let v = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
            slot.set(v);
            v
        }
    })
}

fn push(record: Record) {
    let shard = thread_slot() as usize % SHARDS;
    COLLECTOR[shard]
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .push(record);
}

/// Number of records currently held by the collector (spans + events).
pub fn records_len() -> usize {
    COLLECTOR
        .iter()
        .map(|s| {
            s.lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .len()
        })
        .sum()
}

pub(crate) fn reset_records() {
    for shard in COLLECTOR.iter() {
        shard
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clear();
    }
}

/// Clones all records out of the collector (does not drain).
pub(crate) fn snapshot_records() -> (Vec<SpanRecord>, Vec<EventRecord>) {
    let mut spans = Vec::new();
    let mut events = Vec::new();
    for shard in COLLECTOR.iter() {
        for record in shard
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .iter()
        {
            match record {
                Record::Span(s) => spans.push(*s),
                Record::Event(e) => events.push(e.clone()),
            }
        }
    }
    spans.sort_by_key(|s| (s.start_us, s.id));
    events.sort_by_key(|e| e.at_us);
    (spans, events)
}

static NEXT_SPAN: AtomicU64 = AtomicU64::new(1);

/// Live span state held by a [`crate::SpanGuard`].
pub(crate) struct ActiveSpan {
    name: &'static str,
    id: u64,
    parent: u64,
    start_us: u64,
    start: Instant,
    start_allocs: u64,
    start_bytes: u64,
}

pub(crate) fn start_span(name: &'static str) -> ActiveSpan {
    let id = NEXT_SPAN.fetch_add(1, Ordering::Relaxed);
    let parent = SPAN_STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        let parent = stack.last().copied().unwrap_or(0);
        stack.push(id);
        parent
    });
    let mem = crate::alloc::stats();
    ActiveSpan {
        name,
        id,
        parent,
        start_us: now_us(),
        start: Instant::now(),
        start_allocs: mem.allocs,
        start_bytes: mem.bytes,
    }
}

pub(crate) fn finish_span(active: ActiveSpan) {
    let elapsed = active.start.elapsed();
    // Deltas before the RSS sample: reading /proc allocates a transient
    // buffer that must not count against this span.
    let mem = crate::alloc::stats();
    let allocs = mem.allocs.saturating_sub(active.start_allocs);
    let bytes = mem.bytes.saturating_sub(active.start_bytes);
    let rss_peak = crate::alloc::rss_peak_bytes();
    SPAN_STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        // Guards drop LIFO in well-formed code; tolerate leaks anyway.
        if stack.last() == Some(&active.id) {
            stack.pop();
        } else {
            stack.retain(|&id| id != active.id);
        }
    });
    crate::metrics::histogram(active.name).record_span(
        elapsed.as_nanos() as u64,
        allocs,
        bytes,
        rss_peak,
    );
    if crate::trace_enabled() {
        push(Record::Span(SpanRecord {
            name: active.name,
            id: active.id,
            parent: active.parent,
            thread: thread_slot(),
            start_us: active.start_us,
            dur_us: elapsed.as_micros() as u64,
            allocs,
            bytes,
            rss_peak,
        }));
    }
}

pub(crate) fn push_event(name: &'static str, fields: &[(&'static str, Value)]) {
    push(Record::Event(EventRecord {
        name,
        thread: thread_slot(),
        at_us: now_us(),
        fields: fields.to_vec(),
    }));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_conversions() {
        assert_eq!(Value::from(3usize), Value::U64(3));
        assert_eq!(Value::from(true), Value::U64(1));
        assert_eq!(Value::from(2.5f32), Value::F64(2.5));
        assert_eq!(Value::from("x"), Value::Str("x".to_string()));
    }

    #[test]
    fn event_record_accessors() {
        let rec = EventRecord {
            name: "t",
            thread: 0,
            at_us: 0,
            fields: vec![
                ("a", Value::U64(4)),
                ("b", Value::F64(0.25)),
                ("c", Value::Str("s".into())),
            ],
        };
        assert_eq!(rec.u64("a"), Some(4));
        assert_eq!(rec.f64("a"), Some(4.0));
        assert_eq!(rec.f64("b"), Some(0.25));
        assert_eq!(rec.str("c"), Some("s"));
        assert_eq!(rec.u64("missing"), None);
    }
}
