//! Minimal JSON helpers: string escaping for the JSONL writer and a
//! strict single-value validator used by tests to check exported lines
//! without pulling in a JSON crate.

/// Escapes a string for embedding between JSON double quotes.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON number token (`null` for NaN/inf, which
/// JSON cannot represent).
pub fn number(v: f64) -> String {
    if v.is_finite() {
        // Rust renders integral floats without a dot ("3"); that is
        // already valid JSON, so pass it through.
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Returns true iff `s` is exactly one valid JSON value (recursive
/// descent, no extensions). Meant for validating exported JSONL lines.
pub fn is_valid(s: &str) -> bool {
    let bytes = s.as_bytes();
    let mut pos = 0;
    if !parse_value(bytes, &mut pos) {
        return false;
    }
    skip_ws(bytes, &mut pos);
    pos == bytes.len()
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> bool {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => parse_string(b, pos),
        Some(b't') => parse_lit(b, pos, b"true"),
        Some(b'f') => parse_lit(b, pos, b"false"),
        Some(b'n') => parse_lit(b, pos, b"null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        _ => false,
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &[u8]) -> bool {
    if b.len() - *pos >= lit.len() && &b[*pos..*pos + lit.len()] == lit {
        *pos += lit.len();
        true
    } else {
        false
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> bool {
    *pos += 1; // '{'
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return true;
    }
    loop {
        skip_ws(b, pos);
        if !parse_string(b, pos) {
            return false;
        }
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return false;
        }
        *pos += 1;
        if !parse_value(b, pos) {
            return false;
        }
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return true;
            }
            _ => return false,
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> bool {
    *pos += 1; // '['
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return true;
    }
    loop {
        if !parse_value(b, pos) {
            return false;
        }
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return true;
            }
            _ => return false,
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> bool {
    if b.get(*pos) != Some(&b'"') {
        return false;
    }
    *pos += 1;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return true;
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        *pos += 1;
                        for _ in 0..4 {
                            match b.get(*pos) {
                                Some(h) if h.is_ascii_hexdigit() => *pos += 1,
                                _ => return false,
                            }
                        }
                    }
                    _ => return false,
                }
            }
            0x00..=0x1f => return false,
            _ => *pos += 1,
        }
    }
    false
}

fn parse_number(b: &[u8], pos: &mut usize) -> bool {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut digits = 0;
    while matches!(b.get(*pos), Some(c) if c.is_ascii_digit()) {
        *pos += 1;
        digits += 1;
    }
    if digits == 0 {
        return false;
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        let mut frac = 0;
        while matches!(b.get(*pos), Some(c) if c.is_ascii_digit()) {
            *pos += 1;
            frac += 1;
        }
        if frac == 0 {
            return false;
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        let mut exp = 0;
        while matches!(b.get(*pos), Some(c) if c.is_ascii_digit()) {
            *pos += 1;
            exp += 1;
        }
        if exp == 0 {
            return false;
        }
    }
    *pos > start
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn number_tokens() {
        assert_eq!(number(1.5), "1.5");
        assert_eq!(number(3.0), "3");
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(f64::INFINITY), "null");
        assert!(is_valid(&number(0.1 + 0.2)));
        assert!(is_valid(&number(1e300)));
        assert!(is_valid(&number(-4.25e-3)));
    }

    #[test]
    fn validator_accepts_valid() {
        for ok in [
            "{}",
            "[]",
            "null",
            "true",
            "-3.25e+2",
            "\"a\\u00e9\"",
            r#"{"a":[1,2,{"b":null}],"c":"x\n"}"#,
            "  { \"k\" : 1 }  ",
        ] {
            assert!(is_valid(ok), "should accept: {ok}");
        }
    }

    #[test]
    fn validator_rejects_invalid() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "01a",
            "1.",
            "\"unterminated",
            "{} trailing",
            "nul",
            "{'a':1}",
        ] {
            assert!(!is_valid(bad), "should reject: {bad}");
        }
    }
}
