//! Minimal JSON helpers: string escaping for the JSONL writer and a
//! strict single-value parser ([`parse`] / [`is_valid`]) used by tests
//! and by `vaer-report` to read exported lines without pulling in a
//! JSON crate.

/// Escapes a string for embedding between JSON double quotes.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON number token (`null` for NaN/inf, which
/// JSON cannot represent).
pub fn number(v: f64) -> String {
    if v.is_finite() {
        // Rust renders integral floats without a dot ("3"); that is
        // already valid JSON, so pass it through.
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// A parsed JSON value. Object members keep source order (exports are
/// already name-sorted where determinism matters).
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number token, held as `f64` (exact for integers ≤ 2^53,
    /// which covers every counter this workspace exports).
    Num(f64),
    /// Unescaped string contents.
    Str(String),
    /// Array of values.
    Arr(Vec<JsonValue>),
    /// Object members in source order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Object member lookup (first match; `None` on non-objects).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric accessor.
    pub fn num(&self) -> Option<f64> {
        match self {
            JsonValue::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// Numeric accessor rounded to `u64` (negative → `None`).
    pub fn u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(v) if *v >= 0.0 => Some(v.round() as u64),
            _ => None,
        }
    }

    /// String accessor.
    pub fn str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(v) => Some(v.as_str()),
            _ => None,
        }
    }

    /// Array accessor.
    pub fn arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(v) => Some(v.as_slice()),
            _ => None,
        }
    }

    /// Shorthand for `get(key).and_then(num)`.
    pub fn get_num(&self, key: &str) -> Option<f64> {
        self.get(key)?.num()
    }

    /// Shorthand for `get(key).and_then(str)`.
    pub fn get_str(&self, key: &str) -> Option<&str> {
        self.get(key)?.str()
    }
}

/// Parses exactly one JSON value (recursive descent, no extensions).
/// Returns `None` on any deviation from the grammar, including trailing
/// garbage.
pub fn parse(s: &str) -> Option<JsonValue> {
    let bytes = s.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos == bytes.len() {
        Some(value)
    } else {
        None
    }
}

/// Returns true iff `s` is exactly one valid JSON value. Meant for
/// validating exported JSONL lines.
pub fn is_valid(s: &str) -> bool {
    parse(s).is_some()
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Option<JsonValue> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => parse_string(b, pos).map(JsonValue::Str),
        Some(b't') => parse_lit(b, pos, b"true", JsonValue::Bool(true)),
        Some(b'f') => parse_lit(b, pos, b"false", JsonValue::Bool(false)),
        Some(b'n') => parse_lit(b, pos, b"null", JsonValue::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        _ => None,
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &[u8], value: JsonValue) -> Option<JsonValue> {
    if b.len() - *pos >= lit.len() && &b[*pos..*pos + lit.len()] == lit {
        *pos += lit.len();
        Some(value)
    } else {
        None
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Option<JsonValue> {
    *pos += 1; // '{'
    skip_ws(b, pos);
    let mut members = Vec::new();
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Some(JsonValue::Obj(members));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return None;
        }
        *pos += 1;
        let value = parse_value(b, pos)?;
        members.push((key, value));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Some(JsonValue::Obj(members));
            }
            _ => return None,
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Option<JsonValue> {
    *pos += 1; // '['
    skip_ws(b, pos);
    let mut items = Vec::new();
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Some(JsonValue::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Some(JsonValue::Arr(items));
            }
            _ => return None,
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Option<String> {
    if b.get(*pos) != Some(&b'"') {
        return None;
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        // The writer only emits valid UTF-8; walk it byte-wise and copy
        // multi-byte sequences through untouched.
        match b.get(*pos)? {
            b'"' => {
                *pos += 1;
                return Some(out);
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos)? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        *pos += 1;
                        let first = parse_hex4(b, pos)?;
                        let c = if (0xD800..0xDC00).contains(&first) {
                            // High surrogate: require the low half.
                            if b.get(*pos) != Some(&b'\\') || b.get(*pos + 1) != Some(&b'u') {
                                return None;
                            }
                            *pos += 2;
                            let second = parse_hex4(b, pos)?;
                            if !(0xDC00..0xE000).contains(&second) {
                                return None;
                            }
                            let code = 0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00);
                            char::from_u32(code)?
                        } else {
                            char::from_u32(first)?
                        };
                        out.push(c);
                        continue; // pos already past the escape
                    }
                    _ => return None,
                }
                *pos += 1;
            }
            0x00..=0x1f => return None,
            &c => {
                out.push(c as char);
                *pos += 1;
                // Re-assemble multi-byte UTF-8 sequences.
                if c >= 0x80 {
                    out.pop();
                    let start = *pos - 1;
                    let mut end = *pos;
                    while matches!(b.get(end), Some(x) if (x & 0xC0) == 0x80) {
                        end += 1;
                    }
                    let chunk = std::str::from_utf8(&b[start..end]).ok()?;
                    out.push_str(chunk);
                    *pos = end;
                }
            }
        }
    }
}

fn parse_hex4(b: &[u8], pos: &mut usize) -> Option<u32> {
    let mut v = 0u32;
    for _ in 0..4 {
        let c = *b.get(*pos)?;
        let d = (c as char).to_digit(16)?;
        v = v * 16 + d;
        *pos += 1;
    }
    Some(v)
}

fn parse_number(b: &[u8], pos: &mut usize) -> Option<JsonValue> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut digits = 0;
    while matches!(b.get(*pos), Some(c) if c.is_ascii_digit()) {
        *pos += 1;
        digits += 1;
    }
    if digits == 0 {
        return None;
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        let mut frac = 0;
        while matches!(b.get(*pos), Some(c) if c.is_ascii_digit()) {
            *pos += 1;
            frac += 1;
        }
        if frac == 0 {
            return None;
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        let mut exp = 0;
        while matches!(b.get(*pos), Some(c) if c.is_ascii_digit()) {
            *pos += 1;
            exp += 1;
        }
        if exp == 0 {
            return None;
        }
    }
    // The token is grammatically sound; f64 conversion cannot fail.
    std::str::from_utf8(&b[start..*pos])
        .ok()?
        .parse::<f64>()
        .ok()
        .map(JsonValue::Num)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn number_tokens() {
        assert_eq!(number(1.5), "1.5");
        assert_eq!(number(3.0), "3");
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(f64::INFINITY), "null");
        assert!(is_valid(&number(0.1 + 0.2)));
        assert!(is_valid(&number(1e300)));
        assert!(is_valid(&number(-4.25e-3)));
    }

    #[test]
    fn validator_accepts_valid() {
        for ok in [
            "{}",
            "[]",
            "null",
            "true",
            "-3.25e+2",
            "\"a\\u00e9\"",
            r#"{"a":[1,2,{"b":null}],"c":"x\n"}"#,
            "  { \"k\" : 1 }  ",
        ] {
            assert!(is_valid(ok), "should accept: {ok}");
        }
    }

    #[test]
    fn validator_rejects_invalid() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "01a",
            "1.",
            "\"unterminated",
            "{} trailing",
            "nul",
            "{'a':1}",
        ] {
            assert!(!is_valid(bad), "should reject: {bad}");
        }
    }

    #[test]
    fn parser_builds_values() {
        let v = parse(r#"{"name":"aé\n","n":3.5,"list":[1,true,null]}"#).unwrap();
        assert_eq!(v.get_str("name"), Some("aé\n"));
        assert_eq!(v.get_num("n"), Some(3.5));
        let list = v.get("list").unwrap().arr().unwrap();
        assert_eq!(list[0].num(), Some(1.0));
        assert_eq!(list[1], JsonValue::Bool(true));
        assert_eq!(list[2], JsonValue::Null);
        assert_eq!(v.get("missing"), None);
        assert_eq!(v.get("n").unwrap().u64(), Some(4));
    }

    #[test]
    fn parser_round_trips_escapes() {
        let original = "quote\" slash\\ newline\n tab\t ctrl\u{1} é—😀";
        let encoded = format!("\"{}\"", escape(original));
        let parsed = parse(&encoded).unwrap();
        assert_eq!(parsed.str(), Some(original));
    }

    #[test]
    fn parser_handles_surrogate_pairs() {
        // U+1F600 spelled as an escaped surrogate pair.
        assert_eq!(parse("\"\\ud83d\\ude00\"").unwrap().str(), Some("😀"));
        // A lone high surrogate is invalid.
        assert!(parse("\"\\ud83d\"").is_none());
    }
}
