//! Central registry of telemetry name prefixes.
//!
//! Every counter/gauge/histogram/span/event name registered by library
//! code must start with one of these dot-separated prefixes. The
//! `obs-registry` rule of `vaer-lint` enforces this at the source level,
//! which keeps the metric namespace a closed, enumerable surface: tests
//! and dashboards can iterate [`NAME_PREFIXES`] and know nothing is
//! hiding outside it.
//!
//! Adding a namespace is deliberate friction: extend this list in the
//! same PR that introduces the new instrumentation, and say in the PR
//! what the namespace covers.

/// Registered telemetry namespaces (sorted, unique).
pub const NAME_PREFIXES: &[&str] = &[
    // Active-learning loop: bootstrap, rounds, sample mix.
    "al",
    // Durable snapshot writes/retries/corruption skips.
    "checkpoint",
    // Degradation ladder firings (vaer-core::resilience, DESIGN.md §15).
    "degrade",
    // Staged resolution executor: per-stage spans, resume/cache counters.
    "exec",
    // Label journal appends and replays.
    "journal",
    // Frozen-encoder latent cache builds/hits/invalidations.
    "latent",
    // Kernel dispatch counts and per-shape FLOP/time pairs.
    "linalg",
    // Siamese matcher training and rollback guard.
    "matcher",
    // Allocator totals and RSS gauges from the profiling layer.
    "mem",
    // End-to-end pipeline stage spans.
    "pipeline",
    // VAE representation model encode/train surface.
    "repr",
    // Worker-pool task accounting.
    "runtime",
    // VAE trainer epochs, resume, divergence rollbacks.
    "vae",
];

/// Whether `name` (e.g. `"latent.cache.hits"`) is inside a registered
/// namespace.
pub fn is_registered(name: &str) -> bool {
    let prefix = name.split('.').next().unwrap_or(name);
    NAME_PREFIXES.binary_search(&prefix).is_ok()
}

/// Registered `VAER_*` environment knobs (sorted, unique). Library and
/// example code may only read knobs listed here — the `obs-registry`
/// lint rule enforces it, and a stale-registry check flags entries no
/// code reads any more. Keep each knob documented where it is consumed.
pub const ENV_KNOBS: &[&str] = &[
    // Quick/CI mode for the bench suite (vaer-bench).
    "VAER_BENCH_QUICK",
    // Checkpoint directory for resumable runs (examples).
    "VAER_CKPT_DIR",
    // Run deadline in milliseconds (vaer-core::resilience::RunBudget).
    "VAER_DEADLINE_MS",
    // Generator domain list for benches (vaer-bench).
    "VAER_DOMAINS",
    // Failpoint plan for fault injection (vaer-fault).
    "VAER_FAILPOINTS",
    // Telemetry level: off | summary | trace (vaer-obs).
    "VAER_OBS",
    // Bench problem-size multiplier (vaer-bench).
    "VAER_SCALE",
    // Score-stage precision lane: f32 | int8 (examples).
    "VAER_SCORE_PRECISION",
    // Bench RNG seed (vaer-bench).
    "VAER_SEED",
    // Worker-pool width (vaer-linalg).
    "VAER_THREADS",
    // Chrome-trace output path (vaer-obs).
    "VAER_TRACE_OUT",
];

/// Whether a `VAER_*` environment knob is registered.
pub fn is_registered_knob(name: &str) -> bool {
    ENV_KNOBS.binary_search(&name).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefixes_are_sorted_unique_and_nonempty() {
        assert!(!NAME_PREFIXES.is_empty());
        for pair in NAME_PREFIXES.windows(2) {
            assert!(pair[0] < pair[1], "{pair:?} out of order or duplicated");
        }
        for p in NAME_PREFIXES {
            assert!(!p.is_empty() && !p.contains('.'), "prefix `{p}` malformed");
        }
    }

    #[test]
    fn lookup_uses_first_segment() {
        assert!(is_registered("vae.epoch"));
        assert!(is_registered("latent.cache.hits"));
        assert!(is_registered("mem.rss.peak"));
        assert!(!is_registered("mystery.count"));
        assert!(!is_registered(""));
    }

    #[test]
    fn knobs_are_sorted_unique_and_well_formed() {
        assert!(!ENV_KNOBS.is_empty());
        for pair in ENV_KNOBS.windows(2) {
            assert!(pair[0] < pair[1], "{pair:?} out of order or duplicated");
        }
        for k in ENV_KNOBS {
            assert!(k.starts_with("VAER_"), "knob `{k}` outside the namespace");
        }
        assert!(is_registered_knob("VAER_TRACE_OUT"));
        assert!(!is_registered_knob("VAER_ROGUE"));
    }
}
