//! Fixed-capacity metrics registry.
//!
//! Values live in static arrays of atomics, so recording through a handle
//! is a handful of relaxed atomic RMWs — no lock, no allocation, no
//! resize. Registration (`counter`/`gauge`/`histogram`) takes a `Mutex`
//! over the name lists and does a linear scan; hot paths are expected to
//! register once (e.g. through a `OnceLock`-cached handle struct) and
//! reuse the `Copy` handle.
//!
//! If a capacity is exhausted, registration returns an inert handle that
//! records nothing rather than panicking: telemetry must never take the
//! process down.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Maximum number of distinct counters.
pub const MAX_COUNTERS: usize = 512;
/// Maximum number of distinct gauges.
pub const MAX_GAUGES: usize = 128;
/// Maximum number of distinct histograms.
pub const MAX_HISTOGRAMS: usize = 128;
/// Buckets per histogram (log2-spaced nanoseconds, see [`bucket_index`]).
pub const HIST_BUCKETS: usize = 16;

// Repeating a const with interior mutability in an array initialiser
// creates one fresh atomic per slot — exactly what we want here.
#[allow(clippy::declare_interior_mutable_const)]
const ZERO: AtomicU64 = AtomicU64::new(0);

static COUNTERS: [AtomicU64; MAX_COUNTERS] = [ZERO; MAX_COUNTERS];
// Gauges store `f64::to_bits`.
static GAUGES: [AtomicU64; MAX_GAUGES] = [ZERO; MAX_GAUGES];

struct HistCell {
    count: AtomicU64,
    sum_nanos: AtomicU64,
    min_nanos: AtomicU64, // u64::MAX when empty
    max_nanos: AtomicU64,
    buckets: [AtomicU64; HIST_BUCKETS],
}

#[allow(clippy::declare_interior_mutable_const)]
const HIST_EMPTY: HistCell = HistCell {
    count: AtomicU64::new(0),
    sum_nanos: AtomicU64::new(0),
    min_nanos: AtomicU64::new(u64::MAX),
    max_nanos: AtomicU64::new(0),
    buckets: [ZERO; HIST_BUCKETS],
};

static HISTOGRAMS: [HistCell; MAX_HISTOGRAMS] = [HIST_EMPTY; MAX_HISTOGRAMS];

struct Names {
    counters: Vec<String>,
    gauges: Vec<String>,
    histograms: Vec<String>,
}

static NAMES: Mutex<Names> = Mutex::new(Names {
    counters: Vec::new(),
    gauges: Vec::new(),
    histograms: Vec::new(),
});

/// Index of an inert handle (capacity exhausted).
const DEAD: usize = usize::MAX;

fn register(list: &mut Vec<String>, name: &str, max: usize) -> usize {
    if let Some(i) = list.iter().position(|n| n == name) {
        return i;
    }
    if list.len() >= max {
        return DEAD;
    }
    list.push(name.to_string());
    list.len() - 1
}

/// Finds or registers a counter by name.
pub fn counter(name: &str) -> Counter {
    let mut names = NAMES
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    Counter(register(&mut names.counters, name, MAX_COUNTERS))
}

/// Finds or registers a gauge by name.
pub fn gauge(name: &str) -> Gauge {
    let mut names = NAMES
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    Gauge(register(&mut names.gauges, name, MAX_GAUGES))
}

/// Finds or registers a histogram by name.
pub fn histogram(name: &str) -> Histogram {
    let mut names = NAMES
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    Histogram(register(&mut names.histograms, name, MAX_HISTOGRAMS))
}

/// Monotonic counter handle (`Copy`, lock-free recording).
#[derive(Clone, Copy, Debug)]
pub struct Counter(usize);

impl Counter {
    /// Adds `n`. No-op when telemetry is off or the handle is inert.
    #[inline]
    pub fn add(self, n: u64) {
        if crate::enabled() && self.0 < MAX_COUNTERS {
            COUNTERS[self.0].fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Convenience for `add(1)`.
    #[inline]
    pub fn incr(self) {
        self.add(1);
    }

    /// Current value (reads regardless of level; inert handles read 0).
    pub fn get(self) -> u64 {
        if self.0 < MAX_COUNTERS {
            COUNTERS[self.0].load(Ordering::Relaxed)
        } else {
            0
        }
    }

    /// Registry slot, for handle-identity tests.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Last-write-wins gauge handle storing an `f64`.
#[derive(Clone, Copy, Debug)]
pub struct Gauge(usize);

impl Gauge {
    /// Sets the gauge. No-op when telemetry is off or the handle is inert.
    #[inline]
    pub fn set(self, value: f64) {
        if crate::enabled() && self.0 < MAX_GAUGES {
            GAUGES[self.0].store(value.to_bits(), Ordering::Relaxed);
        }
    }

    /// Current value (0.0 when never set or inert).
    pub fn get(self) -> f64 {
        if self.0 < MAX_GAUGES {
            f64::from_bits(GAUGES[self.0].load(Ordering::Relaxed))
        } else {
            0.0
        }
    }
}

/// Maps a nanosecond duration to its log2 bucket: bucket 0 holds
/// everything under 1.024 µs, bucket `b` (1..15) holds
/// `[2^(9+b), 2^(10+b))` ns, bucket 15 holds everything ≥ ~16.8 ms.
#[inline]
pub fn bucket_index(nanos: u64) -> usize {
    let bits = 64 - (nanos | 1).leading_zeros() as usize;
    bits.saturating_sub(10).min(HIST_BUCKETS - 1)
}

/// Fixed-bucket duration histogram handle (nanosecond values).
///
/// Every update is an independent relaxed RMW on its own atomic, so
/// concurrent recording never tears: `sum(buckets) == count` always holds
/// once recording threads are joined.
#[derive(Clone, Copy, Debug)]
pub struct Histogram(usize);

impl Histogram {
    /// Records one duration. No-op when telemetry is off or inert.
    #[inline]
    pub fn record_nanos(self, nanos: u64) {
        if !crate::enabled() || self.0 >= MAX_HISTOGRAMS {
            return;
        }
        let cell = &HISTOGRAMS[self.0];
        cell.count.fetch_add(1, Ordering::Relaxed);
        cell.sum_nanos.fetch_add(nanos, Ordering::Relaxed);
        cell.min_nanos.fetch_min(nanos, Ordering::Relaxed);
        cell.max_nanos.fetch_max(nanos, Ordering::Relaxed);
        cell.buckets[bucket_index(nanos)].fetch_add(1, Ordering::Relaxed);
    }

    /// Records an [`std::time::Duration`].
    #[inline]
    pub fn record(self, duration: std::time::Duration) {
        self.record_nanos(duration.as_nanos() as u64);
    }

    /// Registry slot, for handle-identity tests.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Snapshot of every registered counter, in registration (first-touch) order; callers sort.
pub(crate) fn snapshot_counters() -> Vec<(String, u64)> {
    let names = NAMES
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    names
        .counters
        .iter()
        .enumerate()
        .map(|(i, n)| (n.clone(), COUNTERS[i].load(Ordering::Relaxed)))
        .collect()
}

/// Snapshot of every registered gauge, in registration (first-touch) order; callers sort.
pub(crate) fn snapshot_gauges() -> Vec<(String, f64)> {
    let names = NAMES
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    names
        .gauges
        .iter()
        .enumerate()
        .map(|(i, n)| (n.clone(), f64::from_bits(GAUGES[i].load(Ordering::Relaxed))))
        .collect()
}

/// Raw histogram snapshot: (name, count, sum, min, max, buckets).
#[allow(clippy::type_complexity)]
pub(crate) fn snapshot_histograms() -> Vec<(String, u64, u64, u64, u64, [u64; HIST_BUCKETS])> {
    let names = NAMES
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    names
        .histograms
        .iter()
        .enumerate()
        .map(|(i, n)| {
            let cell = &HISTOGRAMS[i];
            let count = cell.count.load(Ordering::Relaxed);
            let min = cell.min_nanos.load(Ordering::Relaxed);
            let mut buckets = [0u64; HIST_BUCKETS];
            for (b, slot) in buckets.iter_mut().zip(cell.buckets.iter()) {
                *b = slot.load(Ordering::Relaxed);
            }
            (
                n.clone(),
                count,
                cell.sum_nanos.load(Ordering::Relaxed),
                if count == 0 { 0 } else { min },
                cell.max_nanos.load(Ordering::Relaxed),
                buckets,
            )
        })
        .collect()
}

/// Zeroes every metric value; names and handles stay valid.
pub(crate) fn reset_values() {
    // Hold the names lock so a concurrent snapshot sees a consistent
    // (fully zeroed or fully live) view of the arrays it reads.
    let names = NAMES
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    for slot in COUNTERS.iter().take(names.counters.len()) {
        slot.store(0, Ordering::Relaxed);
    }
    for slot in GAUGES.iter().take(names.gauges.len()) {
        slot.store(0, Ordering::Relaxed);
    }
    for cell in HISTOGRAMS.iter().take(names.histograms.len()) {
        cell.count.store(0, Ordering::Relaxed);
        cell.sum_nanos.store(0, Ordering::Relaxed);
        cell.min_nanos.store(u64::MAX, Ordering::Relaxed);
        cell.max_nanos.store(0, Ordering::Relaxed);
        for b in cell.buckets.iter() {
            b.store(0, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_edges() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(1023), 0);
        assert_eq!(bucket_index(1024), 1);
        assert_eq!(bucket_index(2047), 1);
        assert_eq!(bucket_index(2048), 2);
        assert_eq!(bucket_index(1 << 24), HIST_BUCKETS - 1);
        assert_eq!(bucket_index(u64::MAX), HIST_BUCKETS - 1);
    }

    #[test]
    fn dead_handles_are_inert() {
        let c = Counter(DEAD);
        c.add(5);
        assert_eq!(c.get(), 0);
        let g = Gauge(DEAD);
        g.set(3.0);
        assert_eq!(g.get(), 0.0);
        let h = Histogram(DEAD);
        h.record_nanos(10);
    }
}
