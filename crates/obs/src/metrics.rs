//! Fixed-capacity metrics registry.
//!
//! Values live in static arrays of atomics, so recording through a handle
//! is a handful of relaxed atomic RMWs — no lock, no allocation, no
//! resize. Registration (`counter`/`gauge`/`histogram`) takes a `Mutex`
//! over the name lists and does a linear scan; hot paths are expected to
//! register once (e.g. through a `OnceLock`-cached handle struct) and
//! reuse the `Copy` handle.
//!
//! If a capacity is exhausted, registration returns an inert handle that
//! records nothing rather than panicking: telemetry must never take the
//! process down.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Maximum number of distinct counters.
pub const MAX_COUNTERS: usize = 512;
/// Maximum number of distinct gauges.
pub const MAX_GAUGES: usize = 128;
/// Maximum number of distinct histograms.
pub const MAX_HISTOGRAMS: usize = 128;
/// Sub-bucket precision bits: each octave is split into `2^3 = 8`
/// linear sub-buckets, HDR-histogram style, bounding quantile error to
/// ~12.5% of the value.
pub const HIST_SUB_BITS: usize = 3;
/// Sub-buckets per octave.
pub const HIST_SUB: usize = 1 << HIST_SUB_BITS;
/// Number of octaves (powers of two above the 1.024 µs base range).
pub const HIST_OCTAVES: usize = 16;
/// Buckets per histogram (octave × sub-bucket grid, see [`bucket_index`]).
pub const HIST_BUCKETS: usize = HIST_OCTAVES * HIST_SUB;

// Repeating a const with interior mutability in an array initialiser
// creates one fresh atomic per slot — exactly what we want here.
#[allow(clippy::declare_interior_mutable_const)]
const ZERO: AtomicU64 = AtomicU64::new(0);

static COUNTERS: [AtomicU64; MAX_COUNTERS] = [ZERO; MAX_COUNTERS];
// Gauges store `f64::to_bits`.
static GAUGES: [AtomicU64; MAX_GAUGES] = [ZERO; MAX_GAUGES];

struct HistCell {
    count: AtomicU64,
    sum_nanos: AtomicU64,
    min_nanos: AtomicU64, // u64::MAX when empty
    max_nanos: AtomicU64,
    // Memory accounting, fed by span accounting via `record_span`.
    allocs: AtomicU64,
    bytes: AtomicU64,
    rss_peak: AtomicU64,
    buckets: [AtomicU64; HIST_BUCKETS],
}

#[allow(clippy::declare_interior_mutable_const)]
const HIST_EMPTY: HistCell = HistCell {
    count: AtomicU64::new(0),
    sum_nanos: AtomicU64::new(0),
    min_nanos: AtomicU64::new(u64::MAX),
    max_nanos: AtomicU64::new(0),
    allocs: AtomicU64::new(0),
    bytes: AtomicU64::new(0),
    rss_peak: AtomicU64::new(0),
    buckets: [ZERO; HIST_BUCKETS],
};

static HISTOGRAMS: [HistCell; MAX_HISTOGRAMS] = [HIST_EMPTY; MAX_HISTOGRAMS];

struct Names {
    counters: Vec<String>,
    gauges: Vec<String>,
    histograms: Vec<String>,
}

static NAMES: Mutex<Names> = Mutex::new(Names {
    counters: Vec::new(),
    gauges: Vec::new(),
    histograms: Vec::new(),
});

/// Index of an inert handle (capacity exhausted).
const DEAD: usize = usize::MAX;

fn register(list: &mut Vec<String>, name: &str, max: usize) -> usize {
    if let Some(i) = list.iter().position(|n| n == name) {
        return i;
    }
    if list.len() >= max {
        return DEAD;
    }
    list.push(name.to_string());
    list.len() - 1
}

/// Finds or registers a counter by name.
pub fn counter(name: &str) -> Counter {
    let mut names = NAMES
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    Counter(register(&mut names.counters, name, MAX_COUNTERS))
}

/// Finds or registers a gauge by name.
pub fn gauge(name: &str) -> Gauge {
    let mut names = NAMES
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    Gauge(register(&mut names.gauges, name, MAX_GAUGES))
}

/// Finds or registers a histogram by name.
pub fn histogram(name: &str) -> Histogram {
    let mut names = NAMES
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    Histogram(register(&mut names.histograms, name, MAX_HISTOGRAMS))
}

/// Monotonic counter handle (`Copy`, lock-free recording).
#[derive(Clone, Copy, Debug)]
pub struct Counter(usize);

impl Counter {
    /// Adds `n`. No-op when telemetry is off or the handle is inert.
    #[inline]
    pub fn add(self, n: u64) {
        if crate::enabled() && self.0 < MAX_COUNTERS {
            COUNTERS[self.0].fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Convenience for `add(1)`.
    #[inline]
    pub fn incr(self) {
        self.add(1);
    }

    /// Current value (reads regardless of level; inert handles read 0).
    pub fn get(self) -> u64 {
        if self.0 < MAX_COUNTERS {
            COUNTERS[self.0].load(Ordering::Relaxed)
        } else {
            0
        }
    }

    /// Registry slot, for handle-identity tests.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Last-write-wins gauge handle storing an `f64`.
#[derive(Clone, Copy, Debug)]
pub struct Gauge(usize);

impl Gauge {
    /// Sets the gauge. No-op when telemetry is off or the handle is inert.
    #[inline]
    pub fn set(self, value: f64) {
        if crate::enabled() && self.0 < MAX_GAUGES {
            GAUGES[self.0].store(value.to_bits(), Ordering::Relaxed);
        }
    }

    /// Current value (0.0 when never set or inert).
    pub fn get(self) -> f64 {
        if self.0 < MAX_GAUGES {
            f64::from_bits(GAUGES[self.0].load(Ordering::Relaxed))
        } else {
            0.0
        }
    }
}

/// Maps a nanosecond value to its HDR-style bucket.
///
/// Octave 0 covers `[0, 1024)` ns in 8 linear 128 ns sub-buckets;
/// octave `o ≥ 1` covers `[2^(9+o), 2^(10+o))` ns split into 8 linear
/// sub-buckets of `2^(6+o)` ns each (the value's top three bits below
/// the leading one select the sub-bucket). Values past the last octave
/// land in the final bucket. Relative width is ≤ 1/8 everywhere, which
/// bounds quantile interpolation error to ~12.5%.
#[inline]
pub fn bucket_index(nanos: u64) -> usize {
    let bits = 64 - (nanos | 1).leading_zeros() as usize;
    if bits <= 10 {
        // Octave 0: plain linear 128 ns sub-buckets.
        return (nanos >> 7) as usize;
    }
    let octave = (bits - 10).min(HIST_OCTAVES - 1);
    let sub = if bits - 10 > HIST_OCTAVES - 1 {
        // Beyond the covered range: clamp into the last sub-bucket so
        // the mapping stays monotone.
        HIST_SUB - 1
    } else {
        (nanos >> (bits - 1 - HIST_SUB_BITS)) as usize & (HIST_SUB - 1)
    };
    octave * HIST_SUB + sub
}

/// Inclusive-exclusive `[lo, hi)` nanosecond range of a bucket. The
/// final bucket's upper bound is `u64::MAX` (open-ended).
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    let octave = index / HIST_SUB;
    let sub = (index % HIST_SUB) as u64;
    if octave == 0 {
        return (sub * 128, (sub + 1) * 128);
    }
    let base = 1u64 << (9 + octave);
    let width = 1u64 << (6 + octave);
    let lo = base + sub * width;
    let hi = if index == HIST_BUCKETS - 1 {
        u64::MAX
    } else {
        lo + width
    };
    (lo, hi)
}

/// Fixed-bucket duration histogram handle (nanosecond values).
///
/// Every update is an independent relaxed RMW on its own atomic, so
/// concurrent recording never tears: `sum(buckets) == count` always holds
/// once recording threads are joined.
#[derive(Clone, Copy, Debug)]
pub struct Histogram(usize);

impl Histogram {
    /// Records one duration. No-op when telemetry is off or inert.
    #[inline]
    pub fn record_nanos(self, nanos: u64) {
        self.record_span(nanos, 0, 0, 0);
    }

    /// Records one duration together with its memory accounting: the
    /// span's allocation count/bytes deltas are accumulated and the RSS
    /// peak sample is folded in with a running max.
    #[inline]
    pub fn record_span(self, nanos: u64, allocs: u64, bytes: u64, rss_peak: u64) {
        if !crate::enabled() || self.0 >= MAX_HISTOGRAMS {
            return;
        }
        let cell = &HISTOGRAMS[self.0];
        cell.count.fetch_add(1, Ordering::Relaxed);
        cell.sum_nanos.fetch_add(nanos, Ordering::Relaxed);
        cell.min_nanos.fetch_min(nanos, Ordering::Relaxed);
        cell.max_nanos.fetch_max(nanos, Ordering::Relaxed);
        if allocs > 0 {
            cell.allocs.fetch_add(allocs, Ordering::Relaxed);
        }
        if bytes > 0 {
            cell.bytes.fetch_add(bytes, Ordering::Relaxed);
        }
        if rss_peak > 0 {
            cell.rss_peak.fetch_max(rss_peak, Ordering::Relaxed);
        }
        cell.buckets[bucket_index(nanos)].fetch_add(1, Ordering::Relaxed);
    }

    /// Records an [`std::time::Duration`].
    #[inline]
    pub fn record(self, duration: std::time::Duration) {
        self.record_nanos(duration.as_nanos() as u64);
    }

    /// Registry slot, for handle-identity tests.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Snapshot of every registered counter, in registration (first-touch) order; callers sort.
pub(crate) fn snapshot_counters() -> Vec<(String, u64)> {
    let names = NAMES
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    names
        .counters
        .iter()
        .enumerate()
        .map(|(i, n)| (n.clone(), COUNTERS[i].load(Ordering::Relaxed)))
        .collect()
}

/// Snapshot of every registered gauge, in registration (first-touch) order; callers sort.
pub(crate) fn snapshot_gauges() -> Vec<(String, f64)> {
    let names = NAMES
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    names
        .gauges
        .iter()
        .enumerate()
        .map(|(i, n)| (n.clone(), f64::from_bits(GAUGES[i].load(Ordering::Relaxed))))
        .collect()
}

/// Raw histogram snapshot, one per registered histogram.
pub(crate) struct RawHist {
    pub name: String,
    pub count: u64,
    pub sum_nanos: u64,
    pub min_nanos: u64,
    pub max_nanos: u64,
    pub allocs: u64,
    pub bytes: u64,
    pub rss_peak: u64,
    pub buckets: [u64; HIST_BUCKETS],
}

pub(crate) fn snapshot_histograms() -> Vec<RawHist> {
    let names = NAMES
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    names
        .histograms
        .iter()
        .enumerate()
        .map(|(i, n)| {
            let cell = &HISTOGRAMS[i];
            let count = cell.count.load(Ordering::Relaxed);
            let min = cell.min_nanos.load(Ordering::Relaxed);
            let mut buckets = [0u64; HIST_BUCKETS];
            for (b, slot) in buckets.iter_mut().zip(cell.buckets.iter()) {
                *b = slot.load(Ordering::Relaxed);
            }
            RawHist {
                name: n.clone(),
                count,
                sum_nanos: cell.sum_nanos.load(Ordering::Relaxed),
                min_nanos: if count == 0 { 0 } else { min },
                max_nanos: cell.max_nanos.load(Ordering::Relaxed),
                allocs: cell.allocs.load(Ordering::Relaxed),
                bytes: cell.bytes.load(Ordering::Relaxed),
                rss_peak: cell.rss_peak.load(Ordering::Relaxed),
                buckets,
            }
        })
        .collect()
}

/// Zeroes every metric value; names and handles stay valid.
pub(crate) fn reset_values() {
    // Hold the names lock so a concurrent snapshot sees a consistent
    // (fully zeroed or fully live) view of the arrays it reads.
    let names = NAMES
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    for slot in COUNTERS.iter().take(names.counters.len()) {
        slot.store(0, Ordering::Relaxed);
    }
    for slot in GAUGES.iter().take(names.gauges.len()) {
        slot.store(0, Ordering::Relaxed);
    }
    for cell in HISTOGRAMS.iter().take(names.histograms.len()) {
        cell.count.store(0, Ordering::Relaxed);
        cell.sum_nanos.store(0, Ordering::Relaxed);
        cell.min_nanos.store(u64::MAX, Ordering::Relaxed);
        cell.max_nanos.store(0, Ordering::Relaxed);
        cell.allocs.store(0, Ordering::Relaxed);
        cell.bytes.store(0, Ordering::Relaxed);
        cell.rss_peak.store(0, Ordering::Relaxed);
        for b in cell.buckets.iter() {
            b.store(0, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_edges() {
        // Octave 0: linear 128 ns sub-buckets.
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(127), 0);
        assert_eq!(bucket_index(128), 1);
        assert_eq!(bucket_index(1023), 7);
        // Octave 1 starts at 1024 ns with 128 ns sub-buckets.
        assert_eq!(bucket_index(1024), HIST_SUB);
        assert_eq!(bucket_index(1535), HIST_SUB + 3);
        assert_eq!(bucket_index(2047), 2 * HIST_SUB - 1);
        // Octave 2 starts at 2048 ns.
        assert_eq!(bucket_index(2048), 2 * HIST_SUB);
        // Last octave starts at 2^24 ns; everything past it clamps to
        // the final bucket.
        assert_eq!(bucket_index(1 << 24), (HIST_OCTAVES - 1) * HIST_SUB);
        assert_eq!(bucket_index(1 << 25), HIST_BUCKETS - 1);
        assert_eq!(bucket_index(u64::MAX), HIST_BUCKETS - 1);
    }

    #[test]
    fn bucket_bounds_round_trip() {
        let mut prev_hi = 0u64;
        for i in 0..HIST_BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert!(lo < hi, "bucket {i} is non-empty");
            assert_eq!(lo, prev_hi, "bucket {i} is contiguous");
            assert_eq!(bucket_index(lo), i, "lo of bucket {i} maps back");
            assert_eq!(bucket_index(hi - 1), i, "hi-1 of bucket {i} maps back");
            prev_hi = hi;
        }
        assert_eq!(prev_hi, u64::MAX, "grid covers the whole u64 range");
    }

    #[test]
    fn bucket_index_is_monotone() {
        let mut prev = 0usize;
        let mut n = 0u64;
        while n < (1u64 << 30) {
            let b = bucket_index(n);
            assert!(b >= prev, "bucket_index regressed at {n}");
            prev = b;
            n = n * 2 + 77;
        }
    }

    #[test]
    fn dead_handles_are_inert() {
        let c = Counter(DEAD);
        c.add(5);
        assert_eq!(c.get(), 0);
        let g = Gauge(DEAD);
        g.set(3.0);
        assert_eq!(g.get(), 0.0);
        let h = Histogram(DEAD);
        h.record_nanos(10);
    }
}
