//! Snapshot + export: [`ObsSink`] freezes the current telemetry state and
//! renders it as JSONL (machine) or a summary table (human).

use crate::collect::{self, EventRecord, SpanRecord, Value};
use crate::json;
use crate::metrics::{self, HIST_BUCKETS};
use std::io::{self, Write};
use std::path::Path;

/// Frozen view of one histogram.
#[derive(Clone, Debug)]
pub struct HistSnapshot {
    /// Histogram name (usually a span name).
    pub name: String,
    /// Number of recorded durations.
    pub count: u64,
    /// Sum of all recorded durations, nanoseconds.
    pub sum_nanos: u64,
    /// Smallest recorded duration (0 when empty).
    pub min_nanos: u64,
    /// Largest recorded duration.
    pub max_nanos: u64,
    /// Heap allocations attributed to recorded spans (0 for plain
    /// duration histograms).
    pub allocs: u64,
    /// Heap bytes attributed to recorded spans.
    pub bytes: u64,
    /// Largest peak-RSS sample across recorded spans, bytes.
    pub rss_peak: u64,
    /// HDR octave × sub-bucket grid, see [`metrics::bucket_index`].
    pub buckets: [u64; HIST_BUCKETS],
}

impl HistSnapshot {
    /// Mean duration in nanoseconds (0 when empty).
    pub fn mean_nanos(&self) -> u64 {
        self.sum_nanos.checked_div(self.count).unwrap_or(0)
    }

    /// Quantile estimate in nanoseconds, `q` in `[0, 1]` (0 when empty).
    ///
    /// Walks the cumulative bucket counts to the bucket holding the
    /// requested rank and interpolates linearly inside it, clamping the
    /// bucket's range by the observed min/max — so a histogram holding a
    /// single distinct value reports that value exactly, and in general
    /// the error is bounded by the bucket's ~12.5% relative width.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if cum + c >= rank {
                let (blo, bhi) = metrics::bucket_bounds(i);
                let lo = blo.max(self.min_nanos);
                let hi = bhi.min(self.max_nanos.saturating_add(1)).max(lo + 1);
                let pos = (rank - cum) as f64 / c as f64;
                return lo + (((hi - lo - 1) as f64) * pos).round() as u64;
            }
            cum += c;
        }
        self.max_nanos
    }

    /// Median (p50) in nanoseconds.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th percentile in nanoseconds.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th percentile in nanoseconds.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Folds another snapshot into this one (bucket-wise sum; min/max and
    /// RSS peak combine; the name is kept from `self`). Merging shards of
    /// the same distribution preserves quantile estimates exactly because
    /// both sides share one bucket grid.
    pub fn merge(&mut self, other: &HistSnapshot) {
        if other.count == 0 {
            self.allocs += other.allocs;
            self.bytes += other.bytes;
            self.rss_peak = self.rss_peak.max(other.rss_peak);
            return;
        }
        if self.count == 0 {
            self.min_nanos = other.min_nanos;
            self.max_nanos = other.max_nanos;
        } else {
            self.min_nanos = self.min_nanos.min(other.min_nanos);
            self.max_nanos = self.max_nanos.max(other.max_nanos);
        }
        self.count += other.count;
        self.sum_nanos += other.sum_nanos;
        self.allocs += other.allocs;
        self.bytes += other.bytes;
        self.rss_peak = self.rss_peak.max(other.rss_peak);
        for (dst, src) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *dst += src;
        }
    }
}

/// A frozen snapshot of every registered metric plus all collected span
/// and event records, ready for export.
#[derive(Clone, Debug)]
pub struct ObsSink {
    /// Level at snapshot time.
    pub level: crate::Level,
    /// Counters sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Gauges sorted by name.
    pub gauges: Vec<(String, f64)>,
    /// Histograms sorted by name.
    pub histograms: Vec<HistSnapshot>,
    /// Individual spans (populated only at `trace` level), by start time.
    pub spans: Vec<SpanRecord>,
    /// Events, by timestamp.
    pub events: Vec<EventRecord>,
}

impl ObsSink {
    /// Freezes the current telemetry state. Cheap relative to anything
    /// worth instrumenting, but not free — call between phases, not in
    /// inner loops.
    pub fn snapshot() -> Self {
        // Freeze the memory picture first so the gauges below reflect
        // the run being snapshotted, not the snapshot's own allocations.
        crate::alloc::publish_gauges();
        let (spans, events) = collect::snapshot_records();
        // Metrics register in first-touch order, which can differ between
        // runs when worker threads race; sort by name so every export of
        // the same telemetry is byte-identical.
        let mut histograms: Vec<HistSnapshot> = metrics::snapshot_histograms()
            .into_iter()
            .map(|h| HistSnapshot {
                name: h.name,
                count: h.count,
                sum_nanos: h.sum_nanos,
                min_nanos: h.min_nanos,
                max_nanos: h.max_nanos,
                allocs: h.allocs,
                bytes: h.bytes,
                rss_peak: h.rss_peak,
                buckets: h.buckets,
            })
            .collect();
        histograms.sort_by(|a, b| a.name.cmp(&b.name));
        let mut counters = metrics::snapshot_counters();
        counters.sort_by(|a, b| a.0.cmp(&b.0));
        let mut gauges = metrics::snapshot_gauges();
        gauges.sort_by(|a, b| a.0.cmp(&b.0));
        ObsSink {
            level: crate::level(),
            counters,
            gauges,
            histograms,
            spans,
            events,
        }
    }

    /// Value of a counter by name (0 when unregistered).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// Events with the given name, in time order.
    pub fn events_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a EventRecord> {
        self.events.iter().filter(move |e| e.name == name)
    }

    /// Derived throughputs: every counter pair `<p>.flops` / `<p>.nanos`
    /// with nonzero nanos yields `(<p>, flops/nanos)` — and flops per
    /// nanosecond is exactly GFLOP/s.
    pub fn derived_gflops(&self) -> Vec<(String, f64)> {
        let mut out = Vec::new();
        for (name, flops) in &self.counters {
            let Some(prefix) = name.strip_suffix(".flops") else {
                continue;
            };
            let nanos = self.counter(&format!("{prefix}.nanos"));
            if *flops > 0 && nanos > 0 {
                out.push((prefix.to_string(), *flops as f64 / nanos as f64));
            }
        }
        out
    }

    /// Writes the snapshot as JSONL: one self-describing JSON object per
    /// line (`"type"` is one of `meta`, `counter`, `gauge`, `histogram`,
    /// `throughput`, `span`, `event`). Schema documented in DESIGN.md §9.
    pub fn write_jsonl<W: Write>(&self, w: &mut W) -> io::Result<()> {
        writeln!(
            w,
            "{{\"type\":\"meta\",\"level\":\"{}\",\"counters\":{},\"spans\":{},\"events\":{}}}",
            self.level.name(),
            self.counters.len(),
            self.spans.len(),
            self.events.len(),
        )?;
        for (name, value) in &self.counters {
            writeln!(
                w,
                "{{\"type\":\"counter\",\"name\":\"{}\",\"value\":{value}}}",
                json::escape(name)
            )?;
        }
        for (name, value) in &self.gauges {
            writeln!(
                w,
                "{{\"type\":\"gauge\",\"name\":\"{}\",\"value\":{}}}",
                json::escape(name),
                json::number(*value)
            )?;
        }
        for h in &self.histograms {
            if h.count == 0 {
                continue;
            }
            let buckets: Vec<String> = h.buckets.iter().map(|b| b.to_string()).collect();
            writeln!(
                w,
                "{{\"type\":\"histogram\",\"name\":\"{}\",\"count\":{},\"sum_nanos\":{},\"min_nanos\":{},\"max_nanos\":{},\"p50_nanos\":{},\"p90_nanos\":{},\"p99_nanos\":{},\"allocs\":{},\"bytes\":{},\"rss_peak\":{},\"buckets\":[{}]}}",
                json::escape(&h.name),
                h.count,
                h.sum_nanos,
                h.min_nanos,
                h.max_nanos,
                h.p50(),
                h.p90(),
                h.p99(),
                h.allocs,
                h.bytes,
                h.rss_peak,
                buckets.join(",")
            )?;
        }
        for (name, gflops) in self.derived_gflops() {
            writeln!(
                w,
                "{{\"type\":\"throughput\",\"name\":\"{}\",\"gflops\":{}}}",
                json::escape(&name),
                json::number(gflops)
            )?;
        }
        for s in &self.spans {
            writeln!(
                w,
                "{{\"type\":\"span\",\"name\":\"{}\",\"id\":{},\"parent\":{},\"thread\":{},\"start_us\":{},\"dur_us\":{},\"allocs\":{},\"bytes\":{},\"rss_peak\":{}}}",
                json::escape(s.name),
                s.id,
                s.parent,
                s.thread,
                s.start_us,
                s.dur_us,
                s.allocs,
                s.bytes,
                s.rss_peak
            )?;
        }
        for e in &self.events {
            let mut fields = String::new();
            for (i, (key, value)) in e.fields.iter().enumerate() {
                if i > 0 {
                    fields.push(',');
                }
                fields.push('"');
                fields.push_str(&json::escape(key));
                fields.push_str("\":");
                match value {
                    Value::U64(v) => fields.push_str(&v.to_string()),
                    Value::F64(v) => fields.push_str(&json::number(*v)),
                    Value::Str(v) => {
                        fields.push('"');
                        fields.push_str(&json::escape(v));
                        fields.push('"');
                    }
                }
            }
            writeln!(
                w,
                "{{\"type\":\"event\",\"name\":\"{}\",\"thread\":{},\"at_us\":{},\"fields\":{{{fields}}}}}",
                json::escape(e.name),
                e.thread,
                e.at_us
            )?;
        }
        Ok(())
    }

    /// [`Self::write_jsonl`] into a file (truncating).
    pub fn write_jsonl_path(&self, path: &Path) -> io::Result<()> {
        let mut file = std::fs::File::create(path)?;
        let mut buf = io::BufWriter::new(&mut file);
        self.write_jsonl(&mut buf)
    }

    /// Renders the span tree and events as Chrome Trace Event JSON
    /// (loadable in Perfetto / `chrome://tracing`). See `trace` module
    /// docs for the mapping.
    pub fn write_chrome_trace<W: Write>(&self, w: &mut W) -> io::Result<()> {
        crate::trace::write(self, w)
    }

    /// [`Self::write_chrome_trace`] into a file (truncating).
    pub fn write_chrome_trace_path(&self, path: &Path) -> io::Result<()> {
        let mut file = std::fs::File::create(path)?;
        let mut buf = io::BufWriter::new(&mut file);
        self.write_chrome_trace(&mut buf)
    }

    /// Writes a Chrome trace to the path named by `VAER_TRACE_OUT`, if
    /// set. Returns the path written, or `None` when the knob is unset.
    /// Call this after the run completes, with a `trace`-level snapshot —
    /// at lower levels the file is still valid but contains no spans.
    pub fn write_chrome_trace_if_requested(&self) -> io::Result<Option<std::path::PathBuf>> {
        match std::env::var("VAER_TRACE_OUT") {
            Ok(path) if !path.is_empty() => {
                let path = std::path::PathBuf::from(path);
                self.write_chrome_trace_path(&path)?;
                Ok(Some(path))
            }
            _ => Ok(None),
        }
    }

    /// Human-readable summary table: counters, gauges, span/histogram
    /// timings, derived GFLOP/s, and event counts by name.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("vaer-obs summary (level={})\n", self.level.name()));
        if !self.counters.is_empty() {
            out.push_str("-- counters ----------------------------------------------------\n");
            for (name, value) in &self.counters {
                if *value > 0 {
                    out.push_str(&format!("  {name:<48} {value:>12}\n"));
                }
            }
        }
        let live_gauges: Vec<_> = self.gauges.iter().filter(|(_, v)| *v != 0.0).collect();
        if !live_gauges.is_empty() {
            out.push_str("-- gauges ------------------------------------------------------\n");
            for (name, value) in live_gauges {
                out.push_str(&format!("  {name:<48} {value:>12.3}\n"));
            }
        }
        let live_hists: Vec<_> = self.histograms.iter().filter(|h| h.count > 0).collect();
        if !live_hists.is_empty() {
            out.push_str("-- timings (count / mean / p50 / p99 / max) --------------------\n");
            for h in &live_hists {
                out.push_str(&format!(
                    "  {:<40} {:>6} {:>9} {:>9} {:>9} {:>9}\n",
                    h.name,
                    h.count,
                    human_duration(h.mean_nanos()),
                    human_duration(h.p50()),
                    human_duration(h.p99()),
                    human_duration(h.max_nanos)
                ));
            }
            let mem_hists: Vec<_> = live_hists.iter().filter(|h| h.allocs > 0).collect();
            if !mem_hists.is_empty() {
                out.push_str("-- memory (allocs / bytes / rss peak) --------------------------\n");
                for h in mem_hists {
                    out.push_str(&format!(
                        "  {:<40} {:>9} {:>10} {:>10}\n",
                        h.name,
                        h.allocs,
                        human_bytes(h.bytes),
                        human_bytes(h.rss_peak)
                    ));
                }
            }
        }
        let gflops = self.derived_gflops();
        if !gflops.is_empty() {
            out.push_str("-- throughput --------------------------------------------------\n");
            for (name, value) in gflops {
                out.push_str(&format!("  {name:<48} {value:>7.2} GFLOP/s\n"));
            }
        }
        if !self.events.is_empty() {
            out.push_str("-- events (count by name) --------------------------------------\n");
            let mut names: Vec<&'static str> = Vec::new();
            for e in &self.events {
                if !names.contains(&e.name) {
                    names.push(e.name);
                }
            }
            for name in names {
                let count = self.events.iter().filter(|e| e.name == name).count();
                out.push_str(&format!("  {name:<48} {count:>12}\n"));
            }
        }
        if !self.spans.is_empty() {
            out.push_str(&format!(
                "-- spans: {} individual records (trace level) ------------------\n",
                self.spans.len()
            ));
        }
        out
    }
}

/// Renders a byte count with a unit picked for readability.
pub(crate) fn human_bytes(bytes: u64) -> String {
    if bytes >= 1 << 30 {
        format!("{:.2}GiB", bytes as f64 / (1u64 << 30) as f64)
    } else if bytes >= 1 << 20 {
        format!("{:.1}MiB", bytes as f64 / (1u64 << 20) as f64)
    } else if bytes >= 1 << 10 {
        format!("{:.1}KiB", bytes as f64 / 1024.0)
    } else {
        format!("{bytes}B")
    }
}

/// Renders nanoseconds with a unit picked for readability.
fn human_duration(nanos: u64) -> String {
    if nanos >= 1_000_000_000 {
        format!("{:.2}s", nanos as f64 / 1e9)
    } else if nanos >= 1_000_000 {
        format!("{:.1}ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.1}us", nanos as f64 / 1e3)
    } else {
        format!("{nanos}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn human_duration_units() {
        assert_eq!(human_duration(42), "42ns");
        assert_eq!(human_duration(2_500), "2.5us");
        assert_eq!(human_duration(3_100_000), "3.1ms");
        assert_eq!(human_duration(1_500_000_000), "1.50s");
    }

    #[test]
    fn human_bytes_units() {
        assert_eq!(human_bytes(512), "512B");
        assert_eq!(human_bytes(2048), "2.0KiB");
        assert_eq!(human_bytes(3 << 20), "3.0MiB");
        assert_eq!(human_bytes(5 << 30), "5.00GiB");
    }

    /// Builds a snapshot holding the given nanosecond values, the same
    /// way `Histogram::record_nanos` would bucket them.
    fn hist_of(values: &[u64]) -> HistSnapshot {
        let mut h = HistSnapshot {
            name: "test".into(),
            count: 0,
            sum_nanos: 0,
            min_nanos: 0,
            max_nanos: 0,
            allocs: 0,
            bytes: 0,
            rss_peak: 0,
            buckets: [0; HIST_BUCKETS],
        };
        for &v in values {
            if h.count == 0 {
                h.min_nanos = v;
                h.max_nanos = v;
            } else {
                h.min_nanos = h.min_nanos.min(v);
                h.max_nanos = h.max_nanos.max(v);
            }
            h.count += 1;
            h.sum_nanos += v;
            h.buckets[metrics::bucket_index(v)] += 1;
        }
        h
    }

    #[test]
    fn quantile_single_value_is_exact() {
        let h = hist_of(&[777_777; 10]);
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 777_777, "q={q}");
        }
    }

    #[test]
    fn quantile_empty_is_zero() {
        let h = hist_of(&[]);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p99(), 0);
    }

    #[test]
    fn quantile_two_point_distribution() {
        // 90 fast + 10 slow values, far apart: p50 must sit on the fast
        // mode and p99 on the slow one, exactly (single-value buckets
        // clamp to min/max... the two modes land in distinct buckets).
        let mut values = vec![1_000u64; 90];
        values.extend(vec![1_000_000u64; 10]);
        let h = hist_of(&values);
        let p50 = h.p50();
        let p99 = h.p99();
        let (lo50, hi50) = metrics::bucket_bounds(metrics::bucket_index(1_000));
        assert!(p50 >= lo50 && p50 < hi50, "p50={p50} in fast bucket");
        let (lo99, hi99) = metrics::bucket_bounds(metrics::bucket_index(1_000_000));
        assert!(p99 >= lo99 && p99 < hi99, "p99={p99} in slow bucket");
        assert_eq!(h.quantile(1.0), 1_000_000);
        assert_eq!(h.quantile(0.0), 1_000);
    }

    #[test]
    fn quantile_uniform_error_is_bounded() {
        // 0..10_000 µs uniformly: HDR sub-buckets bound relative error
        // to ~12.5% plus interpolation slack.
        let values: Vec<u64> = (1..=10_000u64).map(|i| i * 1_000).collect();
        let h = hist_of(&values);
        for (q, exact) in [(0.5, 5_000_000u64), (0.9, 9_000_000), (0.99, 9_900_000)] {
            let got = h.quantile(q);
            let err = (got as f64 - exact as f64).abs() / exact as f64;
            assert!(err < 0.15, "q={q}: got {got}, exact {exact}, err {err:.3}");
        }
    }

    #[test]
    fn merge_matches_single_histogram() {
        let all: Vec<u64> = (1..=2_000u64).map(|i| i * 731).collect();
        let (left, right) = all.split_at(700);
        let mut merged = hist_of(left);
        merged.merge(&hist_of(right));
        let whole = hist_of(&all);
        assert_eq!(merged.count, whole.count);
        assert_eq!(merged.sum_nanos, whole.sum_nanos);
        assert_eq!(merged.min_nanos, whole.min_nanos);
        assert_eq!(merged.max_nanos, whole.max_nanos);
        assert_eq!(merged.buckets, whole.buckets);
        for q in [0.5, 0.9, 0.99] {
            assert_eq!(merged.quantile(q), whole.quantile(q), "q={q}");
        }
    }

    #[test]
    fn merge_with_empty_sides() {
        let mut empty = hist_of(&[]);
        let full = hist_of(&[5_000, 6_000, 7_000]);
        empty.merge(&full);
        assert_eq!(empty.count, 3);
        assert_eq!(empty.min_nanos, 5_000);
        assert_eq!(empty.max_nanos, 7_000);
        let mut full2 = hist_of(&[5_000, 6_000, 7_000]);
        full2.merge(&hist_of(&[]));
        assert_eq!(full2.count, 3);
        assert_eq!(full2.min_nanos, 5_000);
    }

    #[test]
    fn derived_gflops_pairs_flops_with_nanos() {
        let sink = ObsSink {
            level: crate::Level::Summary,
            counters: vec![
                ("k.large.flops".into(), 2_000_000_000),
                ("k.large.nanos".into(), 1_000_000_000),
                ("k.small.flops".into(), 100),
                // no k.small.nanos → no derived entry
            ],
            gauges: vec![],
            histograms: vec![],
            spans: vec![],
            events: vec![],
        };
        let g = sink.derived_gflops();
        assert_eq!(g.len(), 1);
        assert_eq!(g[0].0, "k.large");
        assert!((g[0].1 - 2.0).abs() < 1e-12);
    }
}
