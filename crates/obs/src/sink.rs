//! Snapshot + export: [`ObsSink`] freezes the current telemetry state and
//! renders it as JSONL (machine) or a summary table (human).

use crate::collect::{self, EventRecord, SpanRecord, Value};
use crate::json;
use crate::metrics::{self, HIST_BUCKETS};
use std::io::{self, Write};
use std::path::Path;

/// Frozen view of one histogram.
#[derive(Clone, Debug)]
pub struct HistSnapshot {
    /// Histogram name (usually a span name).
    pub name: String,
    /// Number of recorded durations.
    pub count: u64,
    /// Sum of all recorded durations, nanoseconds.
    pub sum_nanos: u64,
    /// Smallest recorded duration (0 when empty).
    pub min_nanos: u64,
    /// Largest recorded duration.
    pub max_nanos: u64,
    /// Log2 buckets, see [`metrics::bucket_index`].
    pub buckets: [u64; HIST_BUCKETS],
}

impl HistSnapshot {
    /// Mean duration in nanoseconds (0 when empty).
    pub fn mean_nanos(&self) -> u64 {
        self.sum_nanos.checked_div(self.count).unwrap_or(0)
    }
}

/// A frozen snapshot of every registered metric plus all collected span
/// and event records, ready for export.
#[derive(Clone, Debug)]
pub struct ObsSink {
    /// Level at snapshot time.
    pub level: crate::Level,
    /// Counters sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Gauges sorted by name.
    pub gauges: Vec<(String, f64)>,
    /// Histograms sorted by name.
    pub histograms: Vec<HistSnapshot>,
    /// Individual spans (populated only at `trace` level), by start time.
    pub spans: Vec<SpanRecord>,
    /// Events, by timestamp.
    pub events: Vec<EventRecord>,
}

impl ObsSink {
    /// Freezes the current telemetry state. Cheap relative to anything
    /// worth instrumenting, but not free — call between phases, not in
    /// inner loops.
    pub fn snapshot() -> Self {
        let (spans, events) = collect::snapshot_records();
        // Metrics register in first-touch order, which can differ between
        // runs when worker threads race; sort by name so every export of
        // the same telemetry is byte-identical.
        let mut histograms: Vec<HistSnapshot> = metrics::snapshot_histograms()
            .into_iter()
            .map(
                |(name, count, sum_nanos, min_nanos, max_nanos, buckets)| HistSnapshot {
                    name,
                    count,
                    sum_nanos,
                    min_nanos,
                    max_nanos,
                    buckets,
                },
            )
            .collect();
        histograms.sort_by(|a, b| a.name.cmp(&b.name));
        let mut counters = metrics::snapshot_counters();
        counters.sort_by(|a, b| a.0.cmp(&b.0));
        let mut gauges = metrics::snapshot_gauges();
        gauges.sort_by(|a, b| a.0.cmp(&b.0));
        ObsSink {
            level: crate::level(),
            counters,
            gauges,
            histograms,
            spans,
            events,
        }
    }

    /// Value of a counter by name (0 when unregistered).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// Events with the given name, in time order.
    pub fn events_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a EventRecord> {
        self.events.iter().filter(move |e| e.name == name)
    }

    /// Derived throughputs: every counter pair `<p>.flops` / `<p>.nanos`
    /// with nonzero nanos yields `(<p>, flops/nanos)` — and flops per
    /// nanosecond is exactly GFLOP/s.
    pub fn derived_gflops(&self) -> Vec<(String, f64)> {
        let mut out = Vec::new();
        for (name, flops) in &self.counters {
            let Some(prefix) = name.strip_suffix(".flops") else {
                continue;
            };
            let nanos = self.counter(&format!("{prefix}.nanos"));
            if *flops > 0 && nanos > 0 {
                out.push((prefix.to_string(), *flops as f64 / nanos as f64));
            }
        }
        out
    }

    /// Writes the snapshot as JSONL: one self-describing JSON object per
    /// line (`"type"` is one of `meta`, `counter`, `gauge`, `histogram`,
    /// `throughput`, `span`, `event`). Schema documented in DESIGN.md §9.
    pub fn write_jsonl<W: Write>(&self, w: &mut W) -> io::Result<()> {
        writeln!(
            w,
            "{{\"type\":\"meta\",\"level\":\"{}\",\"counters\":{},\"spans\":{},\"events\":{}}}",
            self.level.name(),
            self.counters.len(),
            self.spans.len(),
            self.events.len(),
        )?;
        for (name, value) in &self.counters {
            writeln!(
                w,
                "{{\"type\":\"counter\",\"name\":\"{}\",\"value\":{value}}}",
                json::escape(name)
            )?;
        }
        for (name, value) in &self.gauges {
            writeln!(
                w,
                "{{\"type\":\"gauge\",\"name\":\"{}\",\"value\":{}}}",
                json::escape(name),
                json::number(*value)
            )?;
        }
        for h in &self.histograms {
            if h.count == 0 {
                continue;
            }
            let buckets: Vec<String> = h.buckets.iter().map(|b| b.to_string()).collect();
            writeln!(
                w,
                "{{\"type\":\"histogram\",\"name\":\"{}\",\"count\":{},\"sum_nanos\":{},\"min_nanos\":{},\"max_nanos\":{},\"buckets\":[{}]}}",
                json::escape(&h.name),
                h.count,
                h.sum_nanos,
                h.min_nanos,
                h.max_nanos,
                buckets.join(",")
            )?;
        }
        for (name, gflops) in self.derived_gflops() {
            writeln!(
                w,
                "{{\"type\":\"throughput\",\"name\":\"{}\",\"gflops\":{}}}",
                json::escape(&name),
                json::number(gflops)
            )?;
        }
        for s in &self.spans {
            writeln!(
                w,
                "{{\"type\":\"span\",\"name\":\"{}\",\"id\":{},\"parent\":{},\"thread\":{},\"start_us\":{},\"dur_us\":{}}}",
                json::escape(s.name),
                s.id,
                s.parent,
                s.thread,
                s.start_us,
                s.dur_us
            )?;
        }
        for e in &self.events {
            let mut fields = String::new();
            for (i, (key, value)) in e.fields.iter().enumerate() {
                if i > 0 {
                    fields.push(',');
                }
                fields.push('"');
                fields.push_str(&json::escape(key));
                fields.push_str("\":");
                match value {
                    Value::U64(v) => fields.push_str(&v.to_string()),
                    Value::F64(v) => fields.push_str(&json::number(*v)),
                    Value::Str(v) => {
                        fields.push('"');
                        fields.push_str(&json::escape(v));
                        fields.push('"');
                    }
                }
            }
            writeln!(
                w,
                "{{\"type\":\"event\",\"name\":\"{}\",\"thread\":{},\"at_us\":{},\"fields\":{{{fields}}}}}",
                json::escape(e.name),
                e.thread,
                e.at_us
            )?;
        }
        Ok(())
    }

    /// [`Self::write_jsonl`] into a file (truncating).
    pub fn write_jsonl_path(&self, path: &Path) -> io::Result<()> {
        let mut file = std::fs::File::create(path)?;
        let mut buf = io::BufWriter::new(&mut file);
        self.write_jsonl(&mut buf)
    }

    /// Human-readable summary table: counters, gauges, span/histogram
    /// timings, derived GFLOP/s, and event counts by name.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("vaer-obs summary (level={})\n", self.level.name()));
        if !self.counters.is_empty() {
            out.push_str("-- counters ----------------------------------------------------\n");
            for (name, value) in &self.counters {
                if *value > 0 {
                    out.push_str(&format!("  {name:<48} {value:>12}\n"));
                }
            }
        }
        let live_gauges: Vec<_> = self.gauges.iter().filter(|(_, v)| *v != 0.0).collect();
        if !live_gauges.is_empty() {
            out.push_str("-- gauges ------------------------------------------------------\n");
            for (name, value) in live_gauges {
                out.push_str(&format!("  {name:<48} {value:>12.3}\n"));
            }
        }
        let live_hists: Vec<_> = self.histograms.iter().filter(|h| h.count > 0).collect();
        if !live_hists.is_empty() {
            out.push_str("-- timings (count / mean / max) --------------------------------\n");
            for h in live_hists {
                out.push_str(&format!(
                    "  {:<40} {:>6} {:>9} {:>9}\n",
                    h.name,
                    h.count,
                    human_duration(h.mean_nanos()),
                    human_duration(h.max_nanos)
                ));
            }
        }
        let gflops = self.derived_gflops();
        if !gflops.is_empty() {
            out.push_str("-- throughput --------------------------------------------------\n");
            for (name, value) in gflops {
                out.push_str(&format!("  {name:<48} {value:>7.2} GFLOP/s\n"));
            }
        }
        if !self.events.is_empty() {
            out.push_str("-- events (count by name) --------------------------------------\n");
            let mut names: Vec<&'static str> = Vec::new();
            for e in &self.events {
                if !names.contains(&e.name) {
                    names.push(e.name);
                }
            }
            for name in names {
                let count = self.events.iter().filter(|e| e.name == name).count();
                out.push_str(&format!("  {name:<48} {count:>12}\n"));
            }
        }
        if !self.spans.is_empty() {
            out.push_str(&format!(
                "-- spans: {} individual records (trace level) ------------------\n",
                self.spans.len()
            ));
        }
        out
    }
}

/// Renders nanoseconds with a unit picked for readability.
fn human_duration(nanos: u64) -> String {
    if nanos >= 1_000_000_000 {
        format!("{:.2}s", nanos as f64 / 1e9)
    } else if nanos >= 1_000_000 {
        format!("{:.1}ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.1}us", nanos as f64 / 1e3)
    } else {
        format!("{nanos}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn human_duration_units() {
        assert_eq!(human_duration(42), "42ns");
        assert_eq!(human_duration(2_500), "2.5us");
        assert_eq!(human_duration(3_100_000), "3.1ms");
        assert_eq!(human_duration(1_500_000_000), "1.50s");
    }

    #[test]
    fn derived_gflops_pairs_flops_with_nanos() {
        let sink = ObsSink {
            level: crate::Level::Summary,
            counters: vec![
                ("k.large.flops".into(), 2_000_000_000),
                ("k.large.nanos".into(), 1_000_000_000),
                ("k.small.flops".into(), 100),
                // no k.small.nanos → no derived entry
            ],
            gauges: vec![],
            histograms: vec![],
            spans: vec![],
            events: vec![],
        };
        let g = sink.derived_gflops();
        assert_eq!(g.len(), 1);
        assert_eq!(g[0].0, "k.large");
        assert!((g[0].1 - 2.0).abs() < 1e-12);
    }
}
