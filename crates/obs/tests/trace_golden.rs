//! Golden test for the Chrome Trace Event export: pins the exact bytes
//! produced for a hand-built sink (escaping, nested spans, multi-thread
//! lanes) and re-parses the output to check structural reconstruction.
//!
//! Builds the `ObsSink` directly instead of recording through the
//! global collector, so it is independent of the process-wide telemetry
//! level and safe to run in parallel with other tests.

use vaer_obs::json::{self, JsonValue};
use vaer_obs::{EventRecord, HistSnapshot, ObsSink, SpanRecord, Value};

fn sample_sink() -> ObsSink {
    ObsSink {
        level: vaer_obs::Level::Trace,
        counters: vec![],
        gauges: vec![],
        histograms: Vec::<HistSnapshot>::new(),
        spans: vec![
            SpanRecord {
                name: "pipeline.fit",
                id: 1,
                parent: 0,
                thread: 0,
                start_us: 10,
                dur_us: 500,
                allocs: 3,
                bytes: 4096,
                rss_peak: 1_048_576,
            },
            SpanRecord {
                name: "exec.\"quote\"\npath",
                id: 2,
                parent: 1,
                thread: 0,
                start_us: 20,
                dur_us: 100,
                allocs: 0,
                bytes: 0,
                rss_peak: 0,
            },
            SpanRecord {
                name: "repr.train",
                id: 3,
                parent: 0,
                thread: 1,
                start_us: 15,
                dur_us: 300,
                allocs: 7,
                bytes: 512,
                rss_peak: 2_097_152,
            },
        ],
        events: vec![EventRecord {
            name: "al.round",
            thread: 1,
            at_us: 40,
            fields: vec![
                ("round", Value::U64(2)),
                ("note", Value::Str("a\"b\\c".to_string())),
                ("f", Value::F64(0.5)),
            ],
        }],
    }
}

#[test]
fn chrome_trace_golden_bytes() {
    let mut buf = Vec::new();
    sample_sink().write_chrome_trace(&mut buf).unwrap();
    let got = String::from_utf8(buf).unwrap();
    let expected = concat!(
        "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[",
        "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,\"tid\":0,",
        "\"args\":{\"name\":\"vaer-thread-0\"}},",
        "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,\"tid\":1,",
        "\"args\":{\"name\":\"vaer-thread-1\"}},",
        "{\"ph\":\"X\",\"name\":\"pipeline.fit\",\"cat\":\"span\",\"pid\":1,",
        "\"tid\":0,\"ts\":10,\"dur\":500,",
        "\"args\":{\"id\":1,\"parent\":0,\"allocs\":3,\"bytes\":4096,\"rss_peak\":1048576}},",
        "{\"ph\":\"X\",\"name\":\"exec.\\\"quote\\\"\\npath\",\"cat\":\"span\",\"pid\":1,",
        "\"tid\":0,\"ts\":20,\"dur\":100,",
        "\"args\":{\"id\":2,\"parent\":1,\"allocs\":0,\"bytes\":0,\"rss_peak\":0}},",
        "{\"ph\":\"X\",\"name\":\"repr.train\",\"cat\":\"span\",\"pid\":1,",
        "\"tid\":1,\"ts\":15,\"dur\":300,",
        "\"args\":{\"id\":3,\"parent\":0,\"allocs\":7,\"bytes\":512,\"rss_peak\":2097152}},",
        "{\"ph\":\"i\",\"name\":\"al.round\",\"cat\":\"event\",\"pid\":1,",
        "\"tid\":1,\"ts\":40,\"s\":\"t\",",
        "\"args\":{\"round\":2,\"note\":\"a\\\"b\\\\c\",\"f\":0.5}}",
        "]}"
    );
    assert_eq!(got, expected, "Chrome-trace bytes drifted from the golden");
}

#[test]
fn chrome_trace_parses_and_reconstructs() {
    let mut buf = Vec::new();
    sample_sink().write_chrome_trace(&mut buf).unwrap();
    let text = String::from_utf8(buf).unwrap();
    assert!(json::is_valid(&text), "trace JSON must be valid");
    let root = json::parse(&text).unwrap();
    let events = root.get("traceEvents").unwrap().arr().unwrap();

    // Two thread lanes, both named.
    let lanes: Vec<&JsonValue> = events
        .iter()
        .filter(|e| e.get_str("ph") == Some("M"))
        .collect();
    assert_eq!(lanes.len(), 2);
    assert_eq!(
        lanes[0].get("args").unwrap().get_str("name"),
        Some("vaer-thread-0")
    );

    // Span names survive escaping, and the parent/thread relationship of
    // the nested span is reconstructible from args.
    let spans: Vec<&JsonValue> = events
        .iter()
        .filter(|e| e.get_str("ph") == Some("X"))
        .collect();
    assert_eq!(spans.len(), 3);
    let nested = spans
        .iter()
        .find(|s| s.get_str("name") == Some("exec.\"quote\"\npath"))
        .unwrap();
    let parent_id = nested.get("args").unwrap().get_num("parent").unwrap();
    let parent = spans
        .iter()
        .find(|s| s.get("args").unwrap().get_num("id") == Some(parent_id))
        .unwrap();
    assert_eq!(parent.get_str("name"), Some("pipeline.fit"));
    assert_eq!(parent.get_num("tid"), nested.get_num("tid"));
    // The child lies inside the parent's [ts, ts+dur) window.
    let (pts, pdur) = (
        parent.get_num("ts").unwrap(),
        parent.get_num("dur").unwrap(),
    );
    let (cts, cdur) = (
        nested.get_num("ts").unwrap(),
        nested.get_num("dur").unwrap(),
    );
    assert!(cts >= pts && cts + cdur <= pts + pdur);

    // Memory accounting rides along on span args.
    let fit = spans
        .iter()
        .find(|s| s.get_str("name") == Some("pipeline.fit"))
        .unwrap();
    let args = fit.get("args").unwrap();
    assert_eq!(args.get_num("allocs"), Some(3.0));
    assert_eq!(args.get_num("bytes"), Some(4096.0));
    assert_eq!(args.get_num("rss_peak"), Some(1_048_576.0));

    // The instant event keeps its typed fields.
    let instant = events
        .iter()
        .find(|e| e.get_str("ph") == Some("i"))
        .unwrap();
    assert_eq!(instant.get_str("name"), Some("al.round"));
    let args = instant.get("args").unwrap();
    assert_eq!(args.get_num("round"), Some(2.0));
    assert_eq!(args.get_str("note"), Some("a\"b\\c"));
    assert_eq!(args.get_num("f"), Some(0.5));
}
