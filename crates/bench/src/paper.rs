//! The paper's reported numbers, transcribed for side-by-side printing.
//!
//! Values come from Tables IV–VIII of the ICDE 2021 paper. A handful of
//! cells are ambiguous in the source text (noted inline); those carry the
//! most plausible reading.

/// Table II row order used by every table below.
pub const DOMAIN_ORDER: [&str; 9] = [
    "Rest.", "Cit. 1", "Cit. 2", "Cosm.", "Soft.", "Music", "Beer", "Stocks", "CRM",
];

/// One Table IV row for one IR family:
/// `(P_ir, P_vaer, R_ir, R_vaer, F1_ir, F1_vaer)`.
pub type TableIvCell = (f32, f32, f32, f32, f32, f32);

/// One Table VIII row:
/// `(p_boot, p_a250, p_full, r_boot, r_a250, r_full, f1_boot, f1_a250,
/// f1_full, f1_pct, training_pct)`.
pub type TableViiiRow = (f32, f32, f32, f32, f32, f32, f32, f32, f32, f32, f32);

/// Table IV: representation learning P/R/F1 @K=10 per IR family.
/// Layout: `[domain][ir_kind]` with `ir_kind` in `[LSA, W2V, BERT, EmbDI]`
/// order.
pub const TABLE_IV: [[TableIvCell; 4]; 9] = [
    // Rest.
    [
        (0.17, 0.17, 1.0, 1.0, 0.29, 0.29),
        (0.31, 0.23, 0.95, 1.0, 0.47, 0.37),
        (0.26, 0.24, 0.95, 1.0, 0.40, 0.41),
        (0.23, 0.23, 1.0, 1.0, 0.37, 0.37),
    ],
    // Cit. 1
    [
        (0.49, 0.51, 0.98, 1.0, 0.64, 0.68),
        (0.57, 0.56, 0.38, 0.98, 0.46, 0.72),
        (0.49, 0.53, 0.98, 1.0, 0.65, 0.69),
        (0.50, 0.47, 0.89, 1.0, 0.65, 0.64),
    ],
    // Cit. 2
    [
        (0.60, 0.67, 0.89, 0.91, 0.70, 0.77),
        (0.75, 0.77, 0.51, 0.82, 0.60, 0.80),
        (0.61, 0.75, 0.64, 0.83, 0.63, 0.79),
        (0.59, 0.70, 0.94, 0.93, 0.72, 0.80),
    ],
    // Cosm.
    [
        (0.65, 0.68, 0.85, 0.83, 0.74, 0.76),
        (0.74, 0.65, 0.84, 0.89, 0.78, 0.76),
        (0.65, 0.78, 0.70, 0.78, 0.67, 0.78),
        (0.66, 0.75, 0.14, 0.25, 0.24, 0.35),
    ],
    // Soft.
    [
        (0.21, 0.25, 0.72, 0.79, 0.33, 0.39),
        (0.22, 0.23, 0.83, 0.80, 0.35, 0.36),
        (0.26, 0.29, 0.60, 0.68, 0.37, 0.41),
        (0.28, 0.28, 0.94, 0.93, 0.43, 0.43),
    ],
    // Music
    [
        (0.58, 0.65, 0.77, 0.82, 0.66, 0.73),
        (0.60, 0.62, 0.84, 0.85, 0.69, 0.71),
        (0.70, 0.68, 0.87, 0.93, 0.77, 0.79),
        (0.72, 0.66, 0.29, 0.86, 0.42, 0.75),
    ],
    // Beer
    [
        (0.44, 0.48, 0.84, 0.86, 0.58, 0.62),
        (0.44, 0.50, 0.84, 0.80, 0.58, 0.62),
        (0.47, 0.57, 0.78, 0.79, 0.59, 0.67),
        (0.70, 0.64, 0.91, 1.0, 0.78, 0.79),
    ],
    // Stocks
    [
        (1.0, 1.0, 0.79, 0.82, 0.88, 0.90),
        (1.0, 1.0, 0.35, 0.45, 0.54, 0.62),
        (1.0, 1.0, 0.64, 0.70, 0.78, 0.82),
        (1.0, 0.99, 0.23, 0.77, 0.54, 0.86),
    ],
    // CRM (the EmbDI F1 cell is garbled in the source; ".84" kept for VAER)
    [
        (1.0, 0.97, 0.68, 0.81, 0.79, 0.89),
        (0.98, 0.97, 0.90, 0.85, 0.94, 0.92),
        (0.96, 0.98, 0.56, 0.80, 0.71, 0.88),
        (1.0, 0.80, 1.0, 0.88, 1.0, 0.84),
    ],
];

/// Table V: matching P/R/F1 per system.
/// Layout: `[domain] = [(P, R, F1); 4]` in `[VAER, DER, DM, DITTO]` order.
pub const TABLE_V: [[(f32, f32, f32); 4]; 9] = [
    [
        (1.0, 0.97, 0.99),
        (0.95, 1.0, 0.97),
        (0.95, 1.0, 0.97),
        (1.0, 0.95, 0.97),
    ],
    [
        (0.97, 1.0, 0.99),
        (0.96, 0.99, 0.97),
        (0.96, 0.99, 0.97),
        (1.0, 0.99, 0.99),
    ],
    [
        (0.90, 0.90, 0.90),
        (0.90, 0.92, 0.91),
        (0.94, 0.94, 0.94),
        (0.97, 0.86, 0.91),
    ],
    [
        (0.87, 0.94, 0.91),
        (0.83, 0.96, 0.89),
        (0.89, 0.92, 0.90),
        (0.91, 0.81, 0.86),
    ],
    [
        (0.62, 0.64, 0.63),
        (0.62, 0.62, 0.62),
        (0.59, 0.64, 0.62),
        (0.72, 0.71, 0.71),
    ],
    [
        (0.86, 0.86, 0.86),
        (0.78, 0.90, 0.83),
        (0.95, 0.81, 0.88),
        (0.78, 1.0, 0.87),
    ],
    [
        (0.75, 0.85, 0.80),
        (0.59, 0.92, 0.72),
        (0.63, 0.85, 0.72),
        (0.72, 0.92, 0.81),
    ],
    [
        (0.99, 0.99, 0.99),
        (1.0, 1.0, 1.0),
        (0.99, 0.99, 0.99),
        (0.99, 0.98, 0.98),
    ],
    [
        (0.97, 0.99, 0.99),
        (0.96, 0.94, 0.95),
        (0.98, 0.97, 0.97),
        (0.94, 0.98, 0.96),
    ],
];

/// Table VI: training times in seconds.
/// Layout: `[domain] = (vaer_repr, vaer_match, der, dm, ditto)`.
pub const TABLE_VI: [(f32, f32, f32, f32, f32); 9] = [
    (4.37, 2.5, 84.5, 258.79, 93.51),
    (23.5, 10.14, 549.65, 1022.31, 100.94),
    (127.84, 23.6, 1145.57, 2318.89, 1523.93),
    (83.1, 1.73, 33.88, 103.12, 84.17),
    (21.95, 19.43, 552.26, 986.07, 679.47),
    (335.32, 1.4, 62.28, 160.15, 64.18),
    (57.29, 4.61, 33.61, 58.76, 59.96),
    (182.29, 17.29, 836.94, 1509.49, 436.85),
    (81.31, 1.88, 40.23, 121.76, 85.83),
];

/// Table VII: local vs transferred representation models.
/// Layout: `[domain] = (recall_local, recall_transferred, f1_local, f1_transferred)`.
/// The source row for Citations 2 is the transfer *source* and reported
/// unchanged.
pub const TABLE_VII: [(f32, f32, f32, f32); 9] = [
    (1.0, 1.0, 0.97, 0.96),
    (0.99, 1.0, 0.99, 0.97),
    (0.91, 0.91, 0.90, 0.90),
    (0.83, 0.83, 0.86, 0.85),
    (0.80, 0.79, 0.59, 0.57),
    (0.79, 0.75, 0.80, 0.78),
    (0.86, 0.86, 0.79, 0.77),
    (0.79, 0.79, 0.95, 0.97),
    (0.81, 0.84, 0.97, 0.98),
];

/// Table VIII: active-learning results.
pub const TABLE_VIII: [TableViiiRow; 9] = [
    (
        0.73, 1.0, 0.94, 0.60, 1.0, 1.0, 0.65, 1.0, 0.97, 103.0, 44.0,
    ),
    (
        0.96, 0.95, 0.97, 0.84, 0.97, 1.0, 0.89, 0.95, 0.99, 96.0, 3.3,
    ),
    (
        0.90, 0.70, 0.90, 0.33, 0.80, 0.90, 0.48, 0.74, 0.90, 82.0, 1.4,
    ),
    (
        0.67, 0.80, 0.87, 0.91, 0.85, 0.94, 0.77, 0.82, 0.91, 90.0, 76.0,
    ),
    (
        0.25, 0.56, 0.62, 0.41, 0.38, 0.64, 0.31, 0.45, 0.63, 71.0, 3.6,
    ),
    (
        0.46, 0.80, 0.86, 0.63, 0.83, 0.86, 0.53, 0.81, 0.86, 94.0, 76.0,
    ),
    (
        0.51, 0.71, 0.75, 0.55, 0.73, 0.85, 0.52, 0.71, 0.80, 89.0, 92.0,
    ),
    (
        0.99, 0.95, 0.99, 0.83, 0.85, 0.99, 0.90, 0.89, 0.99, 90.0, 5.5,
    ),
    (
        0.83, 0.78, 0.97, 0.63, 0.88, 0.99, 0.71, 0.82, 0.98, 84.0, 56.0,
    ),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_match_nine_domains() {
        assert_eq!(DOMAIN_ORDER.len(), 9);
        assert_eq!(TABLE_IV.len(), 9);
        assert_eq!(TABLE_V.len(), 9);
        assert_eq!(TABLE_VI.len(), 9);
        assert_eq!(TABLE_VII.len(), 9);
        assert_eq!(TABLE_VIII.len(), 9);
    }

    #[test]
    fn values_are_probabilities_where_expected() {
        for row in &TABLE_V {
            for &(p, r, f1) in row {
                assert!((0.0..=1.0).contains(&p));
                assert!((0.0..=1.0).contains(&r));
                assert!((0.0..=1.0).contains(&f1));
            }
        }
        for &(a, b, c, d, e) in &TABLE_VI {
            assert!(a > 0.0 && b > 0.0 && c > 0.0 && d > 0.0 && e > 0.0);
        }
    }

    #[test]
    fn table_vi_shape_vaer_match_is_cheapest() {
        // The claim the harness must reproduce: VAER's matcher training is
        // far below every baseline, on every domain.
        for &(_, vaer_match, der, dm, ditto) in &TABLE_VI {
            assert!(vaer_match < der && vaer_match < dm && vaer_match < ditto);
        }
    }
}
