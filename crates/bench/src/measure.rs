//! Steady measurement harness: warmup, calibrated batching, and
//! min/median reporting — the antidote to the single-shot timings that
//! made `score_int8_speedup` swing 0.63×–1.99× across identical runs.
//!
//! Two entry points:
//!
//! * [`steady_secs`] times a closure itself, calibrating a batch size so
//!   each sample lasts long enough to dominate timer overhead (this is
//!   the harness the `micro` bench always used, now shared).
//! * [`sampled`] aggregates externally-measured per-run values (e.g. a
//!   span-nanos delta), running warmup iterations first and discarding
//!   them — for lanes where one run is already long enough to time.
//!
//! Report **medians** for central tendency (robust to the multi-x
//! scheduler outliers this container shows) and **mins** for the
//! speed-of-light comparison between two implementations of the same
//! work.

use std::hint::black_box;
use std::time::Instant;

/// Aggregated measurement over several samples.
#[derive(Clone, Copy, Debug)]
pub struct Measured {
    /// Median seconds per call.
    pub median_secs: f64,
    /// Fastest sample, seconds per call.
    pub min_secs: f64,
    /// Slowest sample, seconds per call.
    pub max_secs: f64,
    /// Number of retained (post-warmup) samples.
    pub samples: usize,
    /// Calls per timed batch (1 when values came from [`sampled`]).
    pub batch: usize,
}

impl Measured {
    fn from_values(mut values: Vec<f64>, batch: usize) -> Measured {
        if values.is_empty() {
            return Measured {
                median_secs: 0.0,
                min_secs: 0.0,
                max_secs: 0.0,
                samples: 0,
                batch,
            };
        }
        values.sort_by(f64::total_cmp);
        Measured {
            median_secs: values[values.len() / 2],
            min_secs: values[0],
            max_secs: values[values.len() - 1],
            samples: values.len(),
            batch,
        }
    }
}

/// Median of a value slice (0 when empty). Sorts a copy.
pub fn median(values: &[f64]) -> f64 {
    Measured::from_values(values.to_vec(), 1).median_secs
}

/// Times `f` over `samples` batches, each calibrated to last at least
/// `min_millis`, and reports per-call statistics. The calibration pass
/// doubles as warmup.
pub fn steady_secs<T>(samples: usize, min_millis: u128, mut f: impl FnMut() -> T) -> Measured {
    // Calibrate: grow the batch until one batch takes >= min_millis.
    let mut batch = 1usize;
    loop {
        let start = Instant::now();
        for _ in 0..batch {
            black_box(f());
        }
        if start.elapsed().as_millis() >= min_millis || batch >= 1 << 20 {
            break;
        }
        batch *= 4;
    }
    let values: Vec<f64> = (0..samples.max(1))
        .map(|_| {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            start.elapsed().as_secs_f64() / batch as f64
        })
        .collect();
    Measured::from_values(values, batch)
}

/// Runs `f` — which performs one measured run and returns its seconds —
/// `warmup + samples` times, discarding the warmup values.
pub fn sampled(warmup: usize, samples: usize, mut f: impl FnMut() -> f64) -> Measured {
    for _ in 0..warmup {
        black_box(f());
    }
    let values: Vec<f64> = (0..samples.max(1)).map(|_| f()).collect();
    Measured::from_values(values, 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_is_robust_to_outliers() {
        assert_eq!(median(&[]), 0.0);
        assert_eq!(median(&[3.0]), 3.0);
        // One wild outlier must not move the median off the cluster.
        let m = median(&[1.0, 1.1, 0.9, 1.05, 100.0]);
        assert!((0.9..=1.1).contains(&m), "median {m}");
    }

    #[test]
    fn sampled_discards_warmup() {
        let mut calls = 0u32;
        let m = sampled(2, 5, || {
            calls += 1;
            if calls <= 2 {
                1_000.0 // poisoned warmup values
            } else {
                1.0
            }
        });
        assert_eq!(calls, 7);
        assert_eq!(m.samples, 5);
        assert_eq!(m.median_secs, 1.0);
        assert_eq!(m.min_secs, 1.0);
        assert_eq!(m.max_secs, 1.0);
    }

    #[test]
    fn steady_secs_reports_consistent_stats() {
        let m = steady_secs(5, 1, || black_box(2u64).wrapping_mul(3));
        assert!(m.batch >= 1);
        assert_eq!(m.samples, 5);
        assert!(m.min_secs <= m.median_secs && m.median_secs <= m.max_secs);
        assert!(m.min_secs > 0.0);
    }
}
