//! Shared harness code for the experiment benches.
//!
//! Every table and figure in the paper's evaluation section has a
//! `harness = false` bench target in this crate, so
//! `cargo bench --workspace` regenerates the entire evaluation. Each
//! target prints the paper's reported numbers next to our measured ones;
//! absolute values differ (synthetic data, CPU substrate — see DESIGN.md)
//! but the *shapes* are the comparison that matters.
//!
//! Environment knobs:
//! - `VAER_SCALE` = `tiny` | `small` | `paper` (default `small`),
//! - `VAER_SEED` = u64 (default 42),
//! - `VAER_DOMAINS` = comma-separated Table II names to restrict a run
//!   (e.g. `VAER_DOMAINS=Rest.,Beer`).

pub mod measure;
pub mod paper;
pub mod run_record;

use vaer_core::entity::{EntityRepr, IrTable};
use vaer_core::latent::LatentTable;
use vaer_core::repr::{ReprConfig, ReprModel};
use vaer_data::domains::{Domain, DomainSpec, Scale};
use vaer_data::Dataset;
use vaer_embed::{fit_ir_model, IrKind};

/// Reads the experiment scale from `VAER_SCALE`.
pub fn scale_from_env() -> Scale {
    match std::env::var("VAER_SCALE")
        .unwrap_or_default()
        .to_lowercase()
        .as_str()
    {
        "tiny" => Scale::Tiny,
        "paper" => Scale::Paper,
        _ => Scale::Small,
    }
}

/// Reads the master seed from `VAER_SEED`.
pub fn seed_from_env() -> u64 {
    std::env::var("VAER_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

/// Whether `VAER_BENCH_QUICK=1` (the CI smoke mode: reduced sampling,
/// assertions on, trimmed run records).
pub fn quick_from_env() -> bool {
    std::env::var("VAER_BENCH_QUICK").is_ok_and(|v| v == "1")
}

/// The domains selected by `VAER_DOMAINS` (all nine by default).
pub fn domains_from_env() -> Vec<Domain> {
    match std::env::var("VAER_DOMAINS") {
        Ok(list) if !list.trim().is_empty() => {
            let wanted: Vec<String> = list.split(',').map(|s| s.trim().to_lowercase()).collect();
            Domain::ALL
                .into_iter()
                .filter(|d| wanted.iter().any(|w| d.meta().name.to_lowercase() == *w))
                .collect()
        }
        _ => Domain::ALL.to_vec(),
    }
}

/// Generates the benchmark dataset for a domain at the configured scale.
pub fn dataset(domain: Domain, scale: Scale, seed: u64) -> Dataset {
    DomainSpec::new(domain, scale).generate(seed)
}

/// IR + VAE pipeline front-end shared by the representation experiments:
/// fits the IR model of `kind`, encodes both tables, trains the VAE, and
/// returns the IR tables, the model, and both tables' entity
/// representations.
pub struct ReprBundle {
    /// IR table of table A.
    pub irs_a: IrTable,
    /// IR table of table B.
    pub irs_b: IrTable,
    /// The trained representation model.
    pub repr: ReprModel,
    /// Cached latent encodings of table A (one encoder pass).
    pub lat_a: LatentTable,
    /// Cached latent encodings of table B (one encoder pass).
    pub lat_b: LatentTable,
    /// Entity representations of table A.
    pub reprs_a: Vec<EntityRepr>,
    /// Entity representations of table B.
    pub reprs_b: Vec<EntityRepr>,
    /// IR fit+encode seconds.
    pub ir_secs: f64,
    /// VAE training seconds.
    pub repr_secs: f64,
}

/// Fits IRs of `kind` and a VAE on top (the §VI-B experiment setup).
pub fn fit_repr_bundle(ds: &Dataset, kind: IrKind, ir_dim: usize, seed: u64) -> ReprBundle {
    let arity = ds.table_a.schema.arity();
    let t0 = std::time::Instant::now();
    let sentences = ds.all_sentences();
    let ir_model = fit_ir_model(kind, &sentences, &ds.tables_raw(), ir_dim, seed);
    let a_sentences: Vec<String> = ds.table_a.sentences().map(str::to_owned).collect();
    let b_sentences: Vec<String> = ds.table_b.sentences().map(str::to_owned).collect();
    let irs_a = IrTable::new(arity, ir_model.encode_batch(&a_sentences));
    let irs_b = IrTable::new(arity, ir_model.encode_batch(&b_sentences));
    let ir_secs = t0.elapsed().as_secs_f64();
    let t1 = std::time::Instant::now();
    let config = ReprConfig {
        ir_dim,
        seed: seed ^ 0xE301,
        ..ReprConfig::default()
    };
    let all = irs_a.irs.vconcat(&irs_b.irs);
    let (repr, _) = ReprModel::train(&all, &config).expect("VAE training failed"); // vaer-lint: allow(panic) -- bench setup; abort loudly if the model cannot train
    let repr_secs = t1.elapsed().as_secs_f64();
    // One encoder pass per table; entity representations are derived from
    // the caches, and downstream experiments reuse them instead of
    // re-encoding.
    let lat_a = LatentTable::encode(&repr, &irs_a);
    let lat_b = LatentTable::encode(&repr, &irs_b);
    let reprs_a = lat_a.entities();
    let reprs_b = lat_b.entities();
    ReprBundle {
        irs_a,
        irs_b,
        repr,
        lat_a,
        lat_b,
        reprs_a,
        reprs_b,
        ir_secs,
        repr_secs,
    }
}

/// Formats a metric the way the paper's tables do (`1`, `.97`, `.5`).
pub fn fmt_metric(v: f32) -> String {
    if (v - 1.0).abs() < 5e-3 {
        "1".to_string()
    } else if v <= 0.0 {
        "0".to_string()
    } else {
        let s = format!("{v:.2}");
        s.trim_start_matches('0').to_string()
    }
}

/// Prints a bench banner with the run configuration.
pub fn banner(title: &str) {
    let scale = scale_from_env();
    let seed = seed_from_env();
    println!("\n=== {title} ===");
    println!("(scale: {scale:?}, seed: {seed}; see DESIGN.md for the substitution notes)");
}

/// A tiny key→string cache under `target/vaer-cache/` so bench targets
/// that share expensive computation (Table V ↔ Table VI, Table VIII ↔
/// Fig. 5) don't run it twice within one `cargo bench` invocation.
pub mod cache {
    use std::path::PathBuf;

    fn path(key: &str) -> PathBuf {
        let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
        p.pop();
        p.pop();
        p.push("target");
        p.push("vaer-cache");
        std::fs::create_dir_all(&p).ok();
        p.push(format!("{key}.txt"));
        p
    }

    /// Stores `value` under `key`.
    pub fn put(key: &str, value: &str) {
        std::fs::write(path(key), value).ok();
    }

    /// Fetches the cached value for `key`, if present and produced by the
    /// same scale/seed configuration (encoded into keys by callers).
    pub fn get(key: &str) -> Option<String> {
        std::fs::read_to_string(path(key)).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metric_formatting_matches_paper_style() {
        assert_eq!(fmt_metric(1.0), "1");
        assert_eq!(fmt_metric(0.97), ".97");
        assert_eq!(fmt_metric(0.5), ".50");
        assert_eq!(fmt_metric(0.0), "0");
    }

    #[test]
    fn env_parsing_defaults() {
        // Default scale/seed when env vars are unset in the test runner.
        assert_eq!(seed_from_env(), 42);
        assert_eq!(domains_from_env().len(), 9);
    }

    #[test]
    fn repr_bundle_shapes() {
        let ds = dataset(Domain::Restaurants, Scale::Tiny, 1);
        let bundle = fit_repr_bundle(&ds, IrKind::Lsa, 16, 1);
        assert_eq!(bundle.irs_a.len(), ds.table_a.len());
        assert_eq!(bundle.reprs_b.len(), ds.table_b.len());
        assert!(bundle.repr_secs > 0.0);
    }

    #[test]
    fn cache_round_trip() {
        cache::put("test_key", "hello");
        assert_eq!(cache::get("test_key").as_deref(), Some("hello"));
        assert!(cache::get("missing_key_xyz").is_none());
    }
}
