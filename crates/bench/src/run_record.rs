//! Structured bench run records: one JSON object per run, appended as a
//! line to `BENCH_run.json` at the repository root (JSON-Lines, because
//! appending to a JSON array would mean rewriting the file on every run).
//!
//! Every record carries the run configuration (bench name, scale, seed,
//! thread count, observability level, quick flag, unix timestamp) plus
//! whatever datasets/F1s/wall-times/counters the bench adds. The JSON is
//! hand-assembled via [`vaer_obs::json`] — the workspace carries no
//! serialisation dependency.

use std::path::{Path, PathBuf};
use vaer_obs::json;

/// Version of the record schema. Bump when field meanings change so
/// `vaer-report` can refuse (or adapt to) incompatible history.
/// History: 1 = implicit pre-versioning records; 2 = adds per-stage
/// memory accounting, median-based lane timings, and this field.
pub const SCHEMA_VERSION: u64 = 2;

/// Maximum `BENCH_run.json` lines kept on disk; older lines are dropped
/// on append so history stays bounded and `vaer-report` reads stay O(1).
pub const MAX_RUN_RECORDS: usize = 200;

/// A builder for one `BENCH_run.json` line. Field order is preserved.
pub struct RunRecord {
    /// `(key, serialised JSON value)` pairs, in insertion order.
    fields: Vec<(String, String)>,
}

impl RunRecord {
    /// Starts a record stamped with the shared run configuration.
    pub fn new(bench: &str) -> Self {
        let mut r = Self { fields: Vec::new() };
        r.str_field("bench", bench);
        r.int("schema_version", SCHEMA_VERSION);
        r.str_field("scale", &format!("{:?}", crate::scale_from_env()));
        r.int("seed", crate::seed_from_env());
        r.int("threads", vaer_linalg::runtime::threads() as u64);
        r.str_field("obs", vaer_obs::level().name());
        r.bool_field("quick", crate::quick_from_env());
        let unix_secs = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(0, |d| d.as_secs());
        r.int("unix_secs", unix_secs);
        r
    }

    /// Adds a string field.
    pub fn str_field(&mut self, key: &str, v: &str) -> &mut Self {
        self.raw(key, format!("\"{}\"", json::escape(v)))
    }

    /// Adds an unsigned-integer field.
    pub fn int(&mut self, key: &str, v: u64) -> &mut Self {
        self.raw(key, v.to_string())
    }

    /// Adds a number field (`null` for NaN/inf).
    pub fn num(&mut self, key: &str, v: f64) -> &mut Self {
        self.raw(key, json::number(v))
    }

    /// Adds a boolean field.
    pub fn bool_field(&mut self, key: &str, v: bool) -> &mut Self {
        self.raw(key, v.to_string())
    }

    /// Adds a list-of-strings field.
    pub fn str_list(&mut self, key: &str, vs: &[String]) -> &mut Self {
        let items: Vec<String> = vs
            .iter()
            .map(|v| format!("\"{}\"", json::escape(v)))
            .collect();
        self.raw(key, format!("[{}]", items.join(",")))
    }

    /// Adds a pre-serialised JSON value (caller guarantees validity).
    pub fn raw(&mut self, key: &str, value: String) -> &mut Self {
        self.fields.push((key.to_string(), value));
        self
    }

    /// Snapshots the current values of the given [`vaer_obs`] counters
    /// into a nested `"counters"` object (zeros when `VAER_OBS=off`,
    /// since nothing increments then).
    pub fn counters(&mut self, names: &[&str]) -> &mut Self {
        let items: Vec<String> = names
            .iter()
            .map(|n| format!("\"{}\":{}", json::escape(n), vaer_obs::counter(n).get()))
            .collect();
        self.raw("counters", format!("{{{}}}", items.join(",")))
    }

    /// The record as one JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let items: Vec<String> = self
            .fields
            .iter()
            .map(|(k, v)| format!("\"{}\":{}", json::escape(k), v))
            .collect();
        format!("{{{}}}", items.join(","))
    }

    /// Appends the record as one line to `BENCH_run.json` at the repo
    /// root, creating the file on first use. Returns the path written,
    /// or prints a warning and returns `None` on I/O failure (benches
    /// must not fail because a read-only checkout rejects the write).
    pub fn append(&self) -> Option<PathBuf> {
        use std::io::Write;
        let path = run_record_path();
        let line = self.to_json();
        debug_assert!(json::is_valid(&line), "run record is not valid JSON");
        let res = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .and_then(|mut f| writeln!(f, "{line}"));
        match res {
            Ok(()) => {
                compact(&path, MAX_RUN_RECORDS);
                println!("(run record appended to {})", path.display());
                Some(path)
            }
            Err(e) => {
                println!("(could not append run record to {}: {e})", path.display());
                None
            }
        }
    }
}

/// Keeps only the newest `keep` lines of a JSONL file. Best-effort: any
/// I/O failure leaves the file as it was (benches never fail on
/// housekeeping). Benches run serially, so the read-rewrite is not
/// racing other writers.
pub fn compact(path: &Path, keep: usize) {
    let Ok(text) = std::fs::read_to_string(path) else {
        return;
    };
    let lines: Vec<&str> = text.lines().collect();
    if lines.len() <= keep {
        return;
    }
    let mut kept = lines[lines.len() - keep..].join("\n");
    kept.push('\n');
    if std::fs::write(path, kept).is_ok() {
        println!(
            "(rotated {}: kept newest {keep} of {} records)",
            path.display(),
            lines.len()
        );
    }
}

/// The `BENCH_run.json` path at the repository root.
pub fn run_record_path() -> PathBuf {
    let mut path = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    path.pop();
    path.pop();
    path.push("BENCH_run.json");
    path
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_serialises_to_valid_json() {
        let mut r = RunRecord::new("unit_test");
        r.str_field("domain", "Rest.\"quoted\"")
            .num("f1", 0.9125)
            .num("bad", f64::NAN)
            .int("labels", 40)
            .bool_field("skipped", false)
            .str_list("domains", &["a".into(), "b\nc".into()])
            .counters(&["repr.encode.calls"]);
        let line = r.to_json();
        assert!(json::is_valid(&line), "invalid: {line}");
        assert!(line.starts_with("{\"bench\":\"unit_test\""));
        assert!(line.contains(&format!("\"schema_version\":{SCHEMA_VERSION}")));
        assert!(line.contains("\"bad\":null"));
        assert!(line.contains("\"repr.encode.calls\":"));
    }

    #[test]
    fn compact_keeps_newest_lines() {
        let dir = std::env::temp_dir().join(format!("vaer_compact_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("rotate.jsonl");
        let lines: Vec<String> = (0..10).map(|i| format!("{{\"run\":{i}}}")).collect();
        std::fs::write(&path, lines.join("\n") + "\n").unwrap();

        compact(&path, 4);
        let text = std::fs::read_to_string(&path).unwrap();
        let kept: Vec<&str> = text.lines().collect();
        assert_eq!(kept.len(), 4);
        assert_eq!(kept[0], "{\"run\":6}");
        assert_eq!(kept[3], "{\"run\":9}");
        assert!(text.ends_with('\n'));

        // Under the cap: untouched.
        compact(&path, 100);
        assert_eq!(std::fs::read_to_string(&path).unwrap(), text);
        // Missing file: no-op, no panic.
        compact(&dir.join("absent.jsonl"), 4);
        std::fs::remove_dir_all(&dir).ok();
    }
}
