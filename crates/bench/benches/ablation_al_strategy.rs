//! Ablation: the AL sampling strategy (paper §V-B).
//!
//! Compares VAER's balanced/informative/diverse sampler against the two
//! classic baselines the paper argues against: pure uncertainty
//! (entropy-only) sampling and random sampling, at the same label budget.

use vaer_bench::{banner, dataset, fit_repr_bundle, fmt_metric, scale_from_env, seed_from_env};
use vaer_core::active::{evaluate_matcher, ActiveConfig, ActiveLearner};
use vaer_core::matcher::{MatcherConfig, PairExamples};
use vaer_data::domains::{Domain, Scale};
use vaer_embed::IrKind;

fn main() {
    banner("Ablation — AL sampling: VAER vs entropy-only vs random");
    let scale = scale_from_env();
    let seed = seed_from_env();
    let budget = match scale {
        Scale::Tiny => 40usize,
        Scale::Small => 60,
        Scale::Paper => 100,
    };
    println!(
        "{:<8} | {:>8} {:>12} {:>8}   (test F1 at {budget} labels)",
        "Domain", "VAER", "entropy-only", "random"
    );
    for domain in [
        Domain::Restaurants,
        Domain::Citations2,
        Domain::Beer,
        Domain::Music,
    ] {
        let ds = dataset(domain, scale, seed);
        let bundle = fit_repr_bundle(&ds, IrKind::Lsa, 64, seed);
        let test = PairExamples::build(&bundle.irs_a, &bundle.irs_b, &ds.test_pairs);
        let base_config = || ActiveConfig {
            iterations: 200,
            matcher: MatcherConfig::default(),
            seed,
            ..ActiveConfig::default()
        };

        // Full VAER strategy.
        let oracle = ds.oracle();
        let mut learner = ActiveLearner::with_latents(
            &bundle.repr,
            &bundle.irs_a,
            &bundle.irs_b,
            bundle.lat_a.clone(),
            bundle.lat_b.clone(),
            base_config(),
        );
        let vaer_f1 = learner
            .run(&oracle, budget, None)
            .map(|m| evaluate_matcher(&m, &bundle.irs_a, &bundle.irs_b, &ds.test_pairs).f1)
            .unwrap_or(0.0);

        // Entropy-only: bootstrap seeds, then pure uncertainty sampling.
        let oracle = ds.oracle();
        let mut learner = ActiveLearner::with_latents(
            &bundle.repr,
            &bundle.irs_a,
            &bundle.irs_b,
            bundle.lat_a.clone(),
            bundle.lat_b.clone(),
            base_config(),
        );
        let entropy_f1 = run_with_sampler(&mut learner, &oracle, budget, Sampler::Entropy)
            .map(|m| m.evaluate(&test).f1)
            .unwrap_or(0.0);

        // Random sampling at the same budget.
        let oracle = ds.oracle();
        let mut learner = ActiveLearner::with_latents(
            &bundle.repr,
            &bundle.irs_a,
            &bundle.irs_b,
            bundle.lat_a.clone(),
            bundle.lat_b.clone(),
            base_config(),
        );
        let random_f1 = run_with_sampler(&mut learner, &oracle, budget, Sampler::Random)
            .map(|m| m.evaluate(&test).f1)
            .unwrap_or(0.0);

        println!(
            "{:<8} | {:>8} {:>12} {:>8}",
            ds.name,
            fmt_metric(vaer_f1),
            fmt_metric(entropy_f1),
            fmt_metric(random_f1)
        );
    }
    println!("\nShape check: VAER's sampler should match or beat entropy-only and");
    println!("random at the same budget, per §V's balance/diversity arguments.");
}

enum Sampler {
    Entropy,
    Random,
}

fn run_with_sampler(
    learner: &mut ActiveLearner<'_>,
    oracle: &vaer_data::Oracle,
    budget: usize,
    sampler: Sampler,
) -> Result<vaer_core::matcher::SiameseMatcher, vaer_core::CoreError> {
    // Verify the bootstrap seeds like the standard loop does, then iterate
    // with the ablated sampler.
    let mut matcher = learner.run(oracle, 0, None)?; // bootstrap-verify only
    while oracle.queries_used() < budget && learner.pool_size() > 0 {
        let n = 10.min(budget - oracle.queries_used());
        let batch = match sampler {
            Sampler::Entropy => learner.select_entropy_only(&matcher, n),
            Sampler::Random => learner.select_random(n),
        };
        if batch.is_empty() {
            break;
        }
        learner.absorb_labels(oracle, &batch);
        matcher = learner.train_matcher()?;
    }
    Ok(matcher)
}
