//! Per-stage wall-clock of the staged resolution executor (the §VI-B
//! deployment path): fit once (frozen encoder, so the fused Score fast
//! lane is live), resolve through a `ResolvePlan`, record the stage span
//! totals and artifact-reuse counters, then time the Score stage f32 vs
//! int8 side by side over fresh plans — all into `BENCH_run.json`,
//! together with the hardware-thread count (and thread-scaling numbers
//! when more than one core is available).
//!
//! `VAER_BENCH_QUICK=1` additionally *asserts* the structural
//! invariants the refactor exists for: exactly one LSH index build
//! across repeated resolves, a threshold re-run that is a pure cache
//! hit, no separate Encode stage during a fused resolution, and an int8
//! run that really scored on the int8 lane.

use vaer_bench::run_record::RunRecord;
use vaer_bench::{banner, dataset, scale_from_env, seed_from_env};
use vaer_core::exec::STAGES;
use vaer_core::pipeline::{Pipeline, PipelineConfig, ScorePrecision};
use vaer_data::domains::Domain;
use vaer_obs::{Level, ObsSink};

/// Cumulative `exec.score` span nanoseconds so far.
fn score_nanos() -> u64 {
    ObsSink::snapshot()
        .histograms
        .iter()
        .find(|h| h.name == "exec.score")
        .map_or(0, |h| h.sum_nanos)
}

/// Best-of-`repeats` Score-stage seconds for a fresh plan at this
/// precision (fresh plans so scoring really runs instead of hitting the
/// per-`(k, precision)` memo).
fn score_secs(pipeline: &Pipeline, k: usize, precision: ScorePrecision, repeats: usize) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..repeats {
        let before = score_nanos();
        let mut plan = pipeline.resolve_plan();
        let res = plan
            .run_with_precision(k, 0.5, precision)
            .expect("timed resolve");
        assert_eq!(res.precision, precision, "wrong lane scored the timed run");
        best = best.min((score_nanos() - before) as f64 / 1e9);
    }
    best
}

fn main() {
    let quick = vaer_bench::quick_from_env();
    banner("Resolve stages — staged executor wall-clock");
    vaer_obs::set_level(Level::Summary);
    let scale = scale_from_env();
    let seed = seed_from_env();
    let ds = dataset(Domain::Restaurants, scale, seed);
    let mut config = if quick {
        PipelineConfig::fast()
    } else {
        PipelineConfig::paper()
    };
    config.seed = seed;
    // Keep the encoder frozen at every scale: the fused Score stage and
    // the int8 lane this harness times both require the latent caches.
    config.matcher.fine_tune_encoder = false;
    let pipeline = Pipeline::fit(&ds, &config).expect("pipeline fit");
    // Count only resolution-phase telemetry: fit's Encode stages and
    // training spans are not what this harness reports.
    vaer_obs::reset();

    let k = config.knn_k;
    let mut plan = pipeline.resolve_plan();
    let full = plan.run(k, 0.5).expect("resolve");
    let rerun = plan.run(k, 0.9).expect("threshold re-run");
    let wider = plan.run(2 * k, 0.5).expect("wider-k resolve");
    let entities = plan.entities(k, 0.5, false).expect("clustering");

    let sink = ObsSink::snapshot();
    let stage_secs: Vec<(&str, f64, u64)> = STAGES
        .iter()
        .map(|name| {
            let h = sink.histograms.iter().find(|h| h.name == *name);
            (
                *name,
                h.map_or(0.0, |h| h.sum_nanos as f64 / 1e9),
                h.map_or(0, |h| h.count),
            )
        })
        .collect();

    println!(
        "{} candidates -> {} links at p>=0.5 ({} links at p>=0.9), {} entities\n",
        full.candidates,
        full.links.len(),
        rerun.links.len(),
        entities.len()
    );
    println!("{:<14} {:>6} {:>12}", "stage", "runs", "total");
    for (name, secs, count) in &stage_secs {
        println!("{name:<14} {count:>6} {:>9.3} ms", secs * 1e3);
    }
    let index_builds = sink.counter("exec.index.builds");
    let cache_hits = sink.counter("exec.plan.cache.hits");
    println!("\nindex builds: {index_builds}, plan cache hits: {cache_hits}");

    // Score-stage fast lane: f32 vs int8 over fresh plans, best of
    // `repeats` to shrug off scheduler noise.
    let repeats = if quick { 1 } else { 5 };
    let f32_secs = score_secs(&pipeline, k, ScorePrecision::F32, repeats);
    let int8_secs = score_secs(&pipeline, k, ScorePrecision::Int8, repeats);
    let speedup = f32_secs / int8_secs;
    println!(
        "score stage    f32 {:>9.3} ms | int8 {:>9.3} ms | {speedup:.2}x",
        f32_secs * 1e3,
        int8_secs * 1e3
    );

    // Thread scaling of the Score stage, when the hardware has threads
    // to scale onto.
    let hardware_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let multithread_skipped = hardware_threads < 2;
    let mut scaled: Option<(f64, f64)> = None;
    if !multithread_skipped {
        vaer_linalg::runtime::set_threads(1);
        let one = score_secs(&pipeline, k, ScorePrecision::F32, repeats);
        vaer_linalg::runtime::set_threads(0);
        let all = score_secs(&pipeline, k, ScorePrecision::F32, repeats);
        println!(
            "score scaling  1 thread {:>9.3} ms | {hardware_threads} threads {:>9.3} ms",
            one * 1e3,
            all * 1e3
        );
        scaled = Some((one, all));
    } else {
        println!("score scaling  skipped ({hardware_threads} hardware thread)");
    }

    if quick {
        assert_eq!(
            index_builds, 1,
            "LSH index must be built exactly once per fitted pipeline"
        );
        assert!(rerun.reused, "threshold re-run recomputed the scores");
        assert!(cache_hits >= 1, "no plan cache hit recorded");
        assert!(!wider.reused, "a new k cannot be a cache hit");
        for (name, _, count) in &stage_secs {
            if *name == "exec.encode" {
                assert_eq!(
                    *count, 0,
                    "fused Score must not run a separate Encode stage"
                );
            } else {
                assert!(*count >= 1, "stage {name} never ran");
            }
        }
        assert!(
            pipeline.quantized_matcher().is_some(),
            "frozen fit must calibrate the int8 twin"
        );
    }

    let mut rec = RunRecord::new("resolve_stages");
    for (name, secs, count) in &stage_secs {
        let key = name.replace('.', "_");
        rec.num(&format!("{key}_secs"), *secs)
            .int(&format!("{key}_runs"), *count);
    }
    rec.int("candidates", full.candidates as u64)
        .int("links", full.links.len() as u64)
        .int("entities", entities.len() as u64)
        .int("index_builds", index_builds)
        .int("plan_cache_hits", cache_hits)
        .int("k", k as u64)
        .num("score_f32_secs", f32_secs)
        .num("score_int8_secs", int8_secs)
        .num("score_int8_speedup", speedup)
        .int("hardware_threads", hardware_threads as u64)
        .bool_field("multithread_skipped", multithread_skipped);
    if let Some((one, all)) = scaled {
        rec.num("score_f32_secs_1_thread", one)
            .num("score_f32_secs_all_threads", all);
    }
    rec.append();
}
