//! Per-stage wall-clock of the staged resolution executor (the §VI-B
//! deployment path): fit once, then resolve through a `ResolvePlan`,
//! recording Block → Encode → Score → Link → Cluster span totals plus
//! the artifact-reuse counters into `BENCH_run.json`.
//!
//! `VAER_BENCH_QUICK=1` additionally *asserts* the structural
//! invariants the refactor exists for: exactly one LSH index build
//! across repeated resolves, and a threshold re-run that is a pure
//! cache hit (no extra Block/Encode/Score stage runs).

use vaer_bench::run_record::RunRecord;
use vaer_bench::{banner, dataset, scale_from_env, seed_from_env};
use vaer_core::exec::STAGES;
use vaer_core::pipeline::{Pipeline, PipelineConfig};
use vaer_data::domains::Domain;
use vaer_obs::{Level, ObsSink};

fn main() {
    let quick = vaer_bench::quick_from_env();
    banner("Resolve stages — staged executor wall-clock");
    vaer_obs::set_level(Level::Summary);
    let scale = scale_from_env();
    let seed = seed_from_env();
    let ds = dataset(Domain::Restaurants, scale, seed);
    let mut config = if quick {
        PipelineConfig::fast()
    } else {
        PipelineConfig::paper()
    };
    config.seed = seed;
    let pipeline = Pipeline::fit(&ds, &config).expect("pipeline fit");
    // Count only resolution-phase telemetry: fit's Encode stages and
    // training spans are not what this harness reports.
    vaer_obs::reset();

    let k = config.knn_k;
    let mut plan = pipeline.resolve_plan();
    let full = plan.run(k, 0.5).expect("resolve");
    let rerun = plan.run(k, 0.9).expect("threshold re-run");
    let wider = plan.run(2 * k, 0.5).expect("wider-k resolve");
    let entities = plan.entities(k, 0.5, false).expect("clustering");

    let sink = ObsSink::snapshot();
    let stage_secs: Vec<(&str, f64, u64)> = STAGES
        .iter()
        .map(|name| {
            let h = sink.histograms.iter().find(|h| h.name == *name);
            (
                *name,
                h.map_or(0.0, |h| h.sum_nanos as f64 / 1e9),
                h.map_or(0, |h| h.count),
            )
        })
        .collect();

    println!(
        "{} candidates -> {} links at p>=0.5 ({} links at p>=0.9), {} entities\n",
        full.candidates,
        full.links.len(),
        rerun.links.len(),
        entities.len()
    );
    println!("{:<14} {:>6} {:>12}", "stage", "runs", "total");
    for (name, secs, count) in &stage_secs {
        println!("{name:<14} {count:>6} {:>9.3} ms", secs * 1e3);
    }
    let index_builds = sink.counter("exec.index.builds");
    let cache_hits = sink.counter("exec.plan.cache.hits");
    println!("\nindex builds: {index_builds}, plan cache hits: {cache_hits}");

    if quick {
        assert_eq!(
            index_builds, 1,
            "LSH index must be built exactly once per fitted pipeline"
        );
        assert!(rerun.reused, "threshold re-run recomputed the scores");
        assert!(cache_hits >= 1, "no plan cache hit recorded");
        assert!(!wider.reused, "a new k cannot be a cache hit");
        for (name, _, count) in &stage_secs {
            assert!(*count >= 1, "stage {name} never ran");
        }
    }

    let mut rec = RunRecord::new("resolve_stages");
    for (name, secs, count) in &stage_secs {
        let key = name.replace('.', "_");
        rec.num(&format!("{key}_secs"), *secs)
            .int(&format!("{key}_runs"), *count);
    }
    rec.int("candidates", full.candidates as u64)
        .int("links", full.links.len() as u64)
        .int("entities", entities.len() as u64)
        .int("index_builds", index_builds)
        .int("plan_cache_hits", cache_hits)
        .int("k", k as u64);
    rec.append();
}
