//! Per-stage wall-clock *and memory* of the staged resolution executor
//! (the §VI-B deployment path): fit once (frozen encoder, so the fused
//! Score fast lane is live), resolve through a `ResolvePlan`, record the
//! stage span totals — seconds, allocation count/bytes, peak RSS — and
//! artifact-reuse counters, then time the Score stage f32 vs int8 side
//! by side over fresh plans — all into `BENCH_run.json`, together with
//! the trainer spans from the fit phase, the hardware-thread count, and
//! thread-scaling numbers when more than one core is available.
//!
//! Resilience riders: the record also carries the clean-path resilience
//! counters (`degradations_fired`, `stage_retries`,
//! `checkpoint_write_retries` — all gated at zero by `vaer-report`, so a
//! run that silently fell back to a degraded lane fails the report) and
//! `score_degraded_secs`, the cost of a resolution that loses its int8
//! lane to an injected one-shot Score failure and reruns on f32.
//!
//! Lane timings come from the `vaer_bench::measure` harness: one warmup
//! run, then five measured runs per lane; `score_int8_speedup` is the
//! ratio of **medians** (mins ride along in the record). The old
//! single-shot best-of swung 0.63×–1.99× across identical runs.
//!
//! `VAER_BENCH_QUICK=1` additionally *asserts* the structural
//! invariants the refactor exists for: exactly one LSH index build
//! across repeated resolves, a threshold re-run that is a pure cache
//! hit, no separate Encode stage during a fused resolution, and an int8
//! run that really scored on the int8 lane.
//!
//! With `VAER_TRACE_OUT=<path>` the run records at `trace` level and
//! writes the resolution-phase span tree as Chrome Trace Event JSON.

use vaer_bench::run_record::RunRecord;
use vaer_bench::{banner, dataset, measure, scale_from_env, seed_from_env};
use vaer_core::exec::STAGES;
use vaer_core::pipeline::{Pipeline, PipelineConfig, ScorePrecision};
use vaer_data::domains::Domain;
use vaer_obs::{HistSnapshot, Level, ObsSink};

/// Cumulative `exec.score` span nanoseconds so far.
fn score_nanos() -> u64 {
    ObsSink::snapshot()
        .histograms
        .iter()
        .find(|h| h.name == "exec.score")
        .map_or(0, |h| h.sum_nanos)
}

/// Score-stage seconds per lane: one warmup resolve, then five measured
/// resolves over fresh plans (fresh plans so scoring really runs instead
/// of hitting the per-`(k, precision)` memo).
fn score_lane(pipeline: &Pipeline, k: usize, precision: ScorePrecision) -> measure::Measured {
    measure::sampled(1, 5, || {
        let before = score_nanos();
        let mut plan = pipeline.resolve_plan();
        let res = plan
            .run_with_precision(k, 0.5, precision)
            .expect("timed resolve");
        assert_eq!(res.precision, precision, "wrong lane scored the timed run");
        (score_nanos() - before) as f64 / 1e9
    })
}

/// Records one span histogram's time + memory under `<key>_*` fields.
fn record_hist(rec: &mut RunRecord, key: &str, h: Option<&HistSnapshot>) {
    rec.num(
        &format!("{key}_secs"),
        h.map_or(0.0, |h| h.sum_nanos as f64 / 1e9),
    )
    .int(&format!("{key}_runs"), h.map_or(0, |h| h.count))
    .int(&format!("{key}_allocs"), h.map_or(0, |h| h.allocs))
    .int(&format!("{key}_bytes"), h.map_or(0, |h| h.bytes))
    .int(&format!("{key}_rss_peak"), h.map_or(0, |h| h.rss_peak));
}

fn main() {
    let quick = vaer_bench::quick_from_env();
    banner("Resolve stages — staged executor wall-clock");
    // Record the span tree when a Chrome trace was requested; spans are
    // off at `summary`, which is otherwise all this harness needs.
    let trace_requested = std::env::var("VAER_TRACE_OUT").is_ok_and(|v| !v.is_empty());
    vaer_obs::set_level(if trace_requested {
        Level::Trace
    } else {
        Level::Summary
    });
    let scale = scale_from_env();
    let seed = seed_from_env();
    let ds = dataset(Domain::Restaurants, scale, seed);
    let mut config = if quick {
        PipelineConfig::fast()
    } else {
        PipelineConfig::paper()
    };
    config.seed = seed;
    // Keep the encoder frozen at every scale: the fused Score stage and
    // the int8 lane this harness times both require the latent caches.
    config.matcher.fine_tune_encoder = false;
    let pipeline = Pipeline::fit(&ds, &config).expect("pipeline fit");
    // Freeze the fit-phase trainer spans (VAE training, matcher fit)
    // before the reset wipes them: their time + memory accounting goes
    // into the run record alongside the resolution stages.
    let fit_sink = ObsSink::snapshot();
    let trainer_hist = |name: &str| fit_sink.histograms.iter().find(|h| h.name == name).cloned();
    let repr_train = trainer_hist("repr.train");
    let matcher_fit = trainer_hist("matcher.fit");
    // Count only resolution-phase telemetry: fit's Encode stages and
    // training spans are not what this harness reports.
    vaer_obs::reset();

    let k = config.knn_k;
    let mut plan = pipeline.resolve_plan();
    let full = plan.run(k, 0.5).expect("resolve");
    let rerun = plan.run(k, 0.9).expect("threshold re-run");
    let wider = plan.run(2 * k, 0.5).expect("wider-k resolve");
    let entities = plan.entities(k, 0.5, false).expect("clustering");

    let sink = ObsSink::snapshot();
    let stages: Vec<(&str, Option<HistSnapshot>)> = STAGES
        .iter()
        .map(|name| {
            (
                *name,
                sink.histograms.iter().find(|h| h.name == *name).cloned(),
            )
        })
        .collect();

    println!(
        "{} candidates -> {} links at p>=0.5 ({} links at p>=0.9), {} entities\n",
        full.candidates,
        full.links.len(),
        rerun.links.len(),
        entities.len()
    );
    println!(
        "{:<14} {:>6} {:>12} {:>8} {:>12} {:>12}",
        "stage", "runs", "total", "allocs", "bytes", "rss peak"
    );
    for (name, h) in &stages {
        let (secs, count, allocs, bytes, rss) = h.as_ref().map_or((0.0, 0, 0, 0, 0), |h| {
            (
                h.sum_nanos as f64 / 1e9,
                h.count,
                h.allocs,
                h.bytes,
                h.rss_peak,
            )
        });
        println!(
            "{name:<14} {count:>6} {:>9.3} ms {allocs:>8} {bytes:>12} {rss:>12}",
            secs * 1e3
        );
    }
    let index_builds = sink.counter("exec.index.builds");
    let cache_hits = sink.counter("exec.plan.cache.hits");
    println!("\nindex builds: {index_builds}, plan cache hits: {cache_hits}");

    // Score-stage fast lane: f32 vs int8 over fresh plans. Medians over
    // five post-warmup runs — the speedup of a single-shot pair swung
    // 0.63x–1.99x on this container.
    let f32_lane = score_lane(&pipeline, k, ScorePrecision::F32);
    let int8_lane = score_lane(&pipeline, k, ScorePrecision::Int8);
    let speedup = f32_lane.median_secs / int8_lane.median_secs;
    println!(
        "score stage    f32 {:>9.3} ms | int8 {:>9.3} ms | {speedup:.2}x (medians of {} runs; mins {:.3} / {:.3} ms)",
        f32_lane.median_secs * 1e3,
        int8_lane.median_secs * 1e3,
        f32_lane.samples,
        f32_lane.min_secs * 1e3,
        int8_lane.min_secs * 1e3
    );

    // Thread scaling of the Score stage, when the hardware has threads
    // to scale onto.
    let hardware_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let multithread_skipped = hardware_threads < 2;
    let mut scaled: Option<(f64, f64)> = None;
    if !multithread_skipped {
        vaer_linalg::runtime::set_threads(1);
        let one = score_lane(&pipeline, k, ScorePrecision::F32).median_secs;
        vaer_linalg::runtime::set_threads(0);
        let all = score_lane(&pipeline, k, ScorePrecision::F32).median_secs;
        println!(
            "score scaling  1 thread {:>9.3} ms | {hardware_threads} threads {:>9.3} ms",
            one * 1e3,
            all * 1e3
        );
        scaled = Some((one, all));
    } else {
        println!("score scaling  skipped ({hardware_threads} hardware thread)");
    }

    // Clean-path resilience counters: everything above ran without fault
    // injection, so any degradation or retry here means the executor
    // silently absorbed a problem — vaer-report gates these at zero.
    let clean = ObsSink::snapshot();
    let degradations_fired = clean.counter("degrade.fired");
    let stage_retries = clean.counter("exec.stage.retries");
    let checkpoint_write_retries = clean.counter("checkpoint.write.retries");

    // Degraded lane: arm a one-shot Score failure per run so the int8
    // request falls back to the f32 lane (`degrade.score.f32_fallback`),
    // and time what a resolution that takes the fallback costs.
    let degraded_lane = measure::sampled(1, 5, || {
        vaer_fault::configure("exec.score=err@1").expect("arm score failpoint");
        let before = score_nanos();
        let mut plan = pipeline.resolve_plan();
        let res = plan
            .run_with_precision(k, 0.5, ScorePrecision::Int8)
            .expect("degraded resolve");
        assert_eq!(
            res.precision,
            ScorePrecision::F32,
            "int8 score failure must land on the f32 lane"
        );
        assert!(
            res.health.degraded("degrade.score.f32_fallback"),
            "fallback ran but the resolution health does not report it"
        );
        (score_nanos() - before) as f64 / 1e9
    });
    vaer_fault::clear();
    println!(
        "score degraded int8->f32 {:>9.3} ms (median of {} runs; min {:.3} ms)",
        degraded_lane.median_secs * 1e3,
        degraded_lane.samples,
        degraded_lane.min_secs * 1e3
    );

    if quick {
        assert_eq!(degradations_fired, 0, "clean path fired a degradation");
        assert_eq!(stage_retries, 0, "clean path burned stage retries");
        assert_eq!(
            checkpoint_write_retries, 0,
            "clean path burned checkpoint write retries"
        );
        assert_eq!(
            index_builds, 1,
            "LSH index must be built exactly once per fitted pipeline"
        );
        assert!(rerun.reused, "threshold re-run recomputed the scores");
        assert!(cache_hits >= 1, "no plan cache hit recorded");
        assert!(!wider.reused, "a new k cannot be a cache hit");
        for (name, h) in &stages {
            let count = h.as_ref().map_or(0, |h| h.count);
            if *name == "exec.encode" {
                assert_eq!(count, 0, "fused Score must not run a separate Encode stage");
            } else {
                assert!(count >= 1, "stage {name} never ran");
            }
        }
        assert!(
            repr_train.as_ref().is_some_and(|h| h.allocs > 0),
            "repr.train span must account its allocations"
        );
        assert!(
            pipeline.quantized_matcher().is_some(),
            "frozen fit must calibrate the int8 twin"
        );
    }

    let mut rec = RunRecord::new("resolve_stages");
    for (name, h) in &stages {
        record_hist(&mut rec, &name.replace('.', "_"), h.as_ref());
    }
    record_hist(&mut rec, "repr_train", repr_train.as_ref());
    record_hist(&mut rec, "matcher_fit", matcher_fit.as_ref());
    rec.int("candidates", full.candidates as u64)
        .int("links", full.links.len() as u64)
        .int("entities", entities.len() as u64)
        .int("index_builds", index_builds)
        .int("plan_cache_hits", cache_hits)
        .int("k", k as u64)
        .num("score_f32_secs", f32_lane.median_secs)
        .num("score_int8_secs", int8_lane.median_secs)
        .num("score_f32_min_secs", f32_lane.min_secs)
        .num("score_int8_min_secs", int8_lane.min_secs)
        .num("score_int8_speedup", speedup)
        .num("score_degraded_secs", degraded_lane.median_secs)
        .num("score_degraded_min_secs", degraded_lane.min_secs)
        .int("degradations_fired", degradations_fired)
        .int("stage_retries", stage_retries)
        .int("checkpoint_write_retries", checkpoint_write_retries)
        .int("hardware_threads", hardware_threads as u64)
        .bool_field("multithread_skipped", multithread_skipped);
    if let Some((one, all)) = scaled {
        rec.num("score_f32_secs_1_thread", one)
            .num("score_f32_secs_all_threads", all);
    }
    rec.append();

    if trace_requested {
        match ObsSink::snapshot().write_chrome_trace_if_requested() {
            Ok(Some(path)) => println!("(chrome trace written to {})", path.display()),
            Ok(None) => {}
            Err(e) => println!("(could not write chrome trace: {e})"),
        }
    }
}
