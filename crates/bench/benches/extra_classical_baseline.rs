//! Extra study: the classical feature-based matcher (Magellan-style)
//! against VAER, with bootstrap confidence intervals.
//!
//! The paper excludes Magellan from its tables as a non-deep system that
//! prior work already compared against; this harness recreates that
//! context: string-similarity + logistic regression is competitive on
//! clean structured domains and falls behind on dirty text — the gap that
//! motivates deep ER in the first place.

use vaer_baselines::{Baseline, Magellan, MagellanConfig};
use vaer_bench::{banner, dataset, fmt_metric, scale_from_env, seed_from_env};
use vaer_core::pipeline::{Pipeline, PipelineConfig};
use vaer_data::domains::Domain;
use vaer_stats::resample::bootstrap_f1;

fn main() {
    banner("Extra — classical (Magellan-style) baseline vs VAER, with 95% CIs");
    let scale = scale_from_env();
    let seed = seed_from_env();
    println!(
        "{:<8} {:<6} | {:>22} | {:>22}",
        "Domain", "class", "VAER F1 [95% CI]", "Magellan F1 [95% CI]"
    );
    for domain in Domain::ALL {
        let ds = dataset(domain, scale, seed);
        let clean = if domain.meta().clean {
            "clean"
        } else {
            "noisy"
        };
        let mut config = PipelineConfig::paper();
        config.seed = seed;
        let pipeline = Pipeline::fit(&ds, &config).expect("VAER pipeline");
        let vaer_pred: Vec<bool> = pipeline
            .predict(&ds.test_pairs)
            .iter()
            .map(|&p| p > 0.5)
            .collect();
        let magellan = Magellan::train(&ds, &MagellanConfig::default()).expect("Magellan");
        let mag_pred: Vec<bool> = magellan
            .predict(&ds, &ds.test_pairs)
            .iter()
            .map(|&p| p > 0.5)
            .collect();
        let actual = ds.test_pairs.labels();
        let vaer_ci = bootstrap_f1(&vaer_pred, &actual, 400, 0.95, seed);
        let mag_ci = bootstrap_f1(&mag_pred, &actual, 400, 0.95, seed);
        println!(
            "{:<8} {:<6} | {:>6} [{:>4}, {:>4}]   | {:>6} [{:>4}, {:>4}]",
            ds.name,
            clean,
            fmt_metric(vaer_ci.point),
            fmt_metric(vaer_ci.lo),
            fmt_metric(vaer_ci.hi),
            fmt_metric(mag_ci.point),
            fmt_metric(mag_ci.lo),
            fmt_metric(mag_ci.hi),
        );
    }
    println!("\nShape check: Magellan should be competitive on clean domains and");
    println!("weaker on noisy ones (typos and missing values break exact string");
    println!("similarities) — the motivation for learned representations.");
}
