//! Table VIII: active learning — Bootstrap vs actively-labelled budget vs
//! Full training data.
//!
//! The paper's "A250" uses 250 actively labelled samples against training
//! sets of 268–17223 pairs. Our datasets are scaled down (DESIGN.md), so
//! the budget scales too: the printed `A<n>` column reports the budget
//! used. Also caches each domain's learning curve for the Fig. 5 target.

use vaer_bench::paper::{DOMAIN_ORDER, TABLE_VIII};
use vaer_bench::run_record::RunRecord;
use vaer_bench::{
    banner, cache, dataset, domains_from_env, fit_repr_bundle, fmt_metric, scale_from_env,
    seed_from_env,
};
use vaer_core::active::{evaluate_matcher, ActiveConfig, ActiveLearner};
use vaer_core::matcher::{MatcherConfig, PairExamples, SiameseMatcher};
use vaer_data::domains::{Domain, Scale};
use vaer_embed::IrKind;
use vaer_obs::json;

fn main() {
    banner("Table VIII — active learning (Bootstrap / A<budget> / Full)");
    let scale = scale_from_env();
    let seed = seed_from_env();
    let budget = match scale {
        Scale::Tiny => 40usize,
        Scale::Small => 60,
        Scale::Paper => 100,
    };
    println!(
        "{:<8} | {:>14} | {:>14} | {:>14} | {:>6} {:>7} | paper F1 (boot/A250/full, F1% / train%)",
        "Domain",
        "Bootstrap",
        "A<budget>".to_string(),
        "Full",
        "F1%",
        "Train%"
    );
    let run_start = std::time::Instant::now();
    let mut curves = Vec::new();
    let mut domain_names = Vec::new();
    let mut domain_records = Vec::new();
    for domain in domains_from_env() {
        let ds = dataset(domain, scale, seed);
        let di = Domain::ALL
            .iter()
            .position(|&d| d == domain)
            .expect("domain");
        // Never let the budget exceed half the (scaled) training-set size;
        // a label budget above 100% of the training data would make the
        // paper's "Training %" column meaningless.
        let budget = budget.min(ds.train_pairs.len() / 2).max(20);
        vaer_core::repr::reset_encode_calls();
        let bundle = fit_repr_bundle(&ds, IrKind::Lsa, 64, seed);
        let oracle = ds.oracle();
        let test_examples = PairExamples::build(&bundle.irs_a, &bundle.irs_b, &ds.test_pairs);

        // Full: the conventional supervised matcher on all training pairs.
        let full_examples = PairExamples::build(&bundle.irs_a, &bundle.irs_b, &ds.train_pairs);
        let full_matcher =
            SiameseMatcher::train(&bundle.repr, &full_examples, &MatcherConfig::default())
                .expect("full matcher");
        let full = full_matcher.evaluate(&test_examples);

        // Bootstrap-only: Algorithm 1 seeds, zero AL iterations.
        let config = ActiveConfig {
            iterations: 0,
            matcher: MatcherConfig::default(),
            seed,
            ..ActiveConfig::default()
        };
        let mut boot_learner = ActiveLearner::with_latents(
            &bundle.repr,
            &bundle.irs_a,
            &bundle.irs_b,
            bundle.lat_a.clone(),
            bundle.lat_b.clone(),
            config,
        );
        let boot_matcher = boot_learner
            .run(&oracle, budget, None)
            .expect("bootstrap matcher");
        let boot = evaluate_matcher(&boot_matcher, &bundle.irs_a, &bundle.irs_b, &ds.test_pairs);

        // A<budget>: full Algorithm 2 until the label budget is exhausted.
        let al_oracle = ds.oracle();
        let config = ActiveConfig {
            iterations: 200,
            matcher: MatcherConfig::default(),
            seed,
            ..ActiveConfig::default()
        };
        let mut learner = ActiveLearner::with_latents(
            &bundle.repr,
            &bundle.irs_a,
            &bundle.irs_b,
            bundle.lat_a.clone(),
            bundle.lat_b.clone(),
            config,
        );
        let al_matcher = learner
            .run(&al_oracle, budget, Some(&test_examples))
            .expect("AL matcher");
        let al = evaluate_matcher(&al_matcher, &bundle.irs_a, &bundle.irs_b, &ds.test_pairs);

        // The frozen-encoder cache contract: the whole domain run — VAE
        // bundle, bootstrap learner, and the full AL loop — encodes each
        // table's pool through the representation model exactly once.
        assert_eq!(
            vaer_core::repr::encode_calls(),
            2,
            "expected exactly one pool encoding per table"
        );

        let f1_pct = if full.f1 > 0.0 {
            100.0 * al.f1 / full.f1
        } else {
            0.0
        };
        let train_pct =
            100.0 * al_oracle.queries_used() as f32 / ds.train_pairs.len().max(1) as f32;
        let p = TABLE_VIII[di];
        let cell = |m: vaer_stats::metrics::PrF1| {
            format!(
                "{}/{}/{}",
                fmt_metric(m.precision),
                fmt_metric(m.recall),
                fmt_metric(m.f1)
            )
        };
        let dagger = if learner.bootstrap_corrections() > 0 {
            "†"
        } else {
            " "
        };
        println!(
            "{:<7}{} | {:>14} | {:>14} | {:>14} | {:>5.0}% {:>6.1}% | ({}/{}/{}, {:.0}% / {:.1}%)",
            DOMAIN_ORDER[di],
            dagger,
            cell(boot),
            cell(al),
            cell(full),
            f1_pct,
            train_pct,
            fmt_metric(p.6),
            fmt_metric(p.7),
            fmt_metric(p.8),
            p.9,
            p.10,
        );
        // Cache curve for Fig. 5.
        let curve: Vec<String> = learner
            .history()
            .iter()
            .filter_map(|c| c.test_f1.map(|f1| format!("{}:{:.4}", c.labels_used, f1)))
            .collect();
        curves.push(format!("{}|{}", DOMAIN_ORDER[di], curve.join(";")));
        domain_names.push(DOMAIN_ORDER[di].to_string());
        domain_records.push(format!(
            "{{\"domain\":\"{}\",\"budget\":{},\"labels_used\":{},\"rounds\":{},\"boot_f1\":{},\"al_f1\":{},\"full_f1\":{}}}",
            json::escape(DOMAIN_ORDER[di]),
            budget,
            al_oracle.queries_used(),
            learner.history().len(),
            json::number(f64::from(boot.f1)),
            json::number(f64::from(al.f1)),
            json::number(f64::from(full.f1)),
        ));
    }
    let key = format!("fig5_{scale:?}_{seed}");
    cache::put(&key, &curves.join("\n"));
    let mut rec = RunRecord::new("table8_active_learning");
    rec.str_list("domains", &domain_names)
        .raw("results", format!("[{}]", domain_records.join(",")))
        .num("wall_secs", run_start.elapsed().as_secs_f64())
        .counters(&[
            "repr.encode.calls",
            "repr.encode.rows",
            "latent.cache.builds",
            "latent.cache.hits",
            "latent.cache.invalidations",
            "latent.cache.reads",
        ]);
    rec.append();
    println!("\nShape check: A{budget} should recover most of Full's F1 with a");
    println!("fraction of the labels, and Bootstrap alone should trail both —");
    println!("the paper's Table VIII pattern. (Curves cached for Fig. 5.)");
}
