//! Ablation: the contrastive margin `M` (paper Table III sets `M = 0.5`
//! and notes it is data-dependent).

use vaer_bench::{banner, dataset, fit_repr_bundle, fmt_metric, scale_from_env, seed_from_env};
use vaer_core::matcher::{MatcherConfig, PairExamples, SiameseMatcher};
use vaer_data::domains::Domain;
use vaer_embed::IrKind;

fn main() {
    banner("Ablation — contrastive margin M sweep");
    let scale = scale_from_env();
    let seed = seed_from_env();
    let margins = [0.0f32, 0.1, 0.5, 1.0, 2.0];
    print!("{:<8} |", "Domain");
    for m in margins {
        print!(" {:>7}", format!("M={m}"));
    }
    println!();
    for domain in [Domain::Restaurants, Domain::Citations1, Domain::Beer] {
        let ds = dataset(domain, scale, seed);
        let bundle = fit_repr_bundle(&ds, IrKind::Lsa, 64, seed);
        let train = PairExamples::build(&bundle.irs_a, &bundle.irs_b, &ds.train_pairs);
        let test = PairExamples::build(&bundle.irs_a, &bundle.irs_b, &ds.test_pairs);
        print!("{:<8} |", ds.name);
        for m in margins {
            let config = MatcherConfig {
                margin: m,
                seed,
                ..MatcherConfig::default()
            };
            let f1 = SiameseMatcher::train(&bundle.repr, &train, &config)
                .map(|model| model.evaluate(&test).f1)
                .unwrap_or(0.0);
            print!(" {:>7}", fmt_metric(f1));
        }
        println!();
    }
    println!("\nShape check: performance should be fairly flat around M = 0.5 and");
    println!("degrade only at extreme margins (M = 0 removes the hinge entirely).");
}
