//! Blocking study for the §VI-B note: LSH top-K search over the latent
//! means "can also act as a blocking step in an end-to-end ER process",
//! aiming for high recall because missed duplicates are unrecoverable.
//!
//! Reports, per domain: candidate-set size vs. the full cross product
//! (reduction ratio) and the fraction of true duplicates surviving
//! (blocking recall), for K ∈ {5, 10, 20}.

use vaer_bench::{
    banner, dataset, domains_from_env, fit_repr_bundle, scale_from_env, seed_from_env,
};
use vaer_core::entity::EntityRepr;
use vaer_embed::IrKind;
use vaer_index::{knn_join, E2Lsh};

fn main() {
    banner("Blocking — LSH candidate generation over latent means (§VI-B)");
    let scale = scale_from_env();
    let seed = seed_from_env();
    println!(
        "{:<8} {:>4} | {:>10} {:>11} {:>9}",
        "Domain", "K", "candidates", "reduction", "recall"
    );
    for domain in domains_from_env() {
        let ds = dataset(domain, scale, seed);
        let bundle = fit_repr_bundle(&ds, IrKind::Lsa, 64, seed);
        let a_keys: Vec<Vec<f32>> = bundle.reprs_a.iter().map(EntityRepr::flat_mu).collect();
        let b_keys: Vec<Vec<f32>> = bundle.reprs_b.iter().map(EntityRepr::flat_mu).collect();
        let index = E2Lsh::build_calibrated(b_keys, seed ^ 0xB10C);
        let cross = ds.table_a.len() * ds.table_b.len();
        for k in [5usize, 10, 20] {
            let candidates = knn_join(&a_keys, &index, k);
            let cand_set: std::collections::HashSet<(usize, usize)> =
                candidates.iter().map(|c| (c.left, c.right)).collect();
            let covered = ds
                .duplicates
                .iter()
                .filter(|&&(a, b)| cand_set.contains(&(a, b)))
                .count();
            println!(
                "{:<8} {:>4} | {:>10} {:>10.1}% {:>8.2}",
                ds.name,
                k,
                candidates.len(),
                100.0 * candidates.len() as f64 / cross as f64,
                covered as f32 / ds.duplicates.len().max(1) as f32,
            );
        }
    }
    println!("\nShape check: a few percent of the cross product should retain the");
    println!("large majority of duplicates, with recall rising in K — the blocking");
    println!("premise of §VI-B (missed duplicates here are unrecoverable later).");
}
