//! Serial vs parallel wall-clock of the data-parallel runtime's hot
//! paths: one sharded VAE training step and one large matmul, at 1 thread
//! and at the machine's full thread count.
//!
//! On a single-core host the multi-thread configuration is skipped
//! entirely (both paths would collapse to the same inline serial code,
//! so any printed "speedup" would be measurement noise) and the run
//! record carries `multithread_skipped: true` instead.

use std::hint::black_box;
use std::time::Instant;
use vaer_bench::banner;
use vaer_bench::run_record::RunRecord;
use vaer_core::repr::{ReprConfig, ReprModel};
use vaer_linalg::{runtime, Matrix, XorShiftRng};

/// Median per-call seconds over timed batches (same harness as micro.rs).
fn time_median<T>(mut f: impl FnMut() -> T) -> f64 {
    let mut batch = 1usize;
    loop {
        let start = Instant::now();
        for _ in 0..batch {
            black_box(f());
        }
        if start.elapsed().as_millis() >= 10 || batch >= 1 << 20 {
            break;
        }
        batch *= 4;
    }
    let mut samples: Vec<f64> = (0..9)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            start.elapsed().as_secs_f64() / batch as f64
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn report(name: &str, serial: f64, parallel: f64, threads: usize) {
    println!(
        "{name:<32} serial {:>9.3} ms   {threads} threads {:>9.3} ms   speedup {:>5.2}x",
        serial * 1e3,
        parallel * 1e3,
        serial / parallel
    );
}

/// Serial vs `threads`-way wall-clock of one workload; returns
/// `(serial_secs, parallel_secs)` for the run record.
fn bench_training_step(threads: usize) -> (f64, f64) {
    // One epoch over a 256-row batch of 64-dim IRs — the paper's hot
    // training loop, exercising the sharded-gradient path end to end.
    let mut rng = XorShiftRng::new(7);
    let irs = Matrix::gaussian(256, 64, &mut rng);
    let config = ReprConfig {
        epochs: 1,
        batch_size: 256,
        ..ReprConfig::fast(64)
    };
    let step = || ReprModel::train(black_box(&irs), &config).unwrap();
    runtime::set_threads(1);
    let serial = time_median(step);
    runtime::set_threads(threads);
    let parallel = time_median(step);
    runtime::set_threads(0);
    report("vae_train_step_256x64", serial, parallel, threads);
    (serial, parallel)
}

fn bench_matmul(threads: usize) -> (f64, f64) {
    let mut rng = XorShiftRng::new(8);
    let a = Matrix::gaussian(512, 256, &mut rng);
    let b = Matrix::gaussian(256, 512, &mut rng);
    let f = || a.matmul(black_box(&b));
    runtime::set_threads(1);
    let serial = time_median(f);
    runtime::set_threads(threads);
    let parallel = time_median(f);
    runtime::set_threads(0);
    report("matmul_512x256x512", serial, parallel, threads);
    (serial, parallel)
}

fn main() {
    banner("parallel runtime: serial vs sharded");
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("hardware threads: {threads}");
    let mut rec = RunRecord::new("parallel_runtime");
    rec.int("hardware_threads", threads as u64);
    if threads == 1 {
        // A 1-thread "parallel" configuration runs the same inline serial
        // code, so a speedup number would be pure noise — skip and say so
        // in the record rather than reporting a meaningless ratio.
        println!("(single-core host: multi-thread configs skipped)");
        rec.bool_field("multithread_skipped", true);
    } else {
        let (mm_serial, mm_parallel) = bench_matmul(threads);
        let (tr_serial, tr_parallel) = bench_training_step(threads);
        rec.bool_field("multithread_skipped", false)
            .num("matmul_serial_secs", mm_serial)
            .num("matmul_parallel_secs", mm_parallel)
            .num("matmul_speedup", mm_serial / mm_parallel)
            .num("train_step_serial_secs", tr_serial)
            .num("train_step_parallel_secs", tr_parallel)
            .num("train_step_speedup", tr_serial / tr_parallel);
    }
    rec.append();
}
