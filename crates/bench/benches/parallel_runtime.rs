//! Serial vs parallel wall-clock of the data-parallel runtime's hot
//! paths: one sharded VAE training step and one large matmul, at 1 thread
//! and at the machine's full thread count.
//!
//! On a single-core host both configurations collapse to the same inline
//! serial path, so the printed ratio is ~1.0 there by construction; the
//! speedup claim is only measurable with >= 2 hardware threads.

use std::hint::black_box;
use std::time::Instant;
use vaer_bench::banner;
use vaer_core::repr::{ReprConfig, ReprModel};
use vaer_linalg::{runtime, Matrix, XorShiftRng};

/// Median per-call seconds over timed batches (same harness as micro.rs).
fn time_median<T>(mut f: impl FnMut() -> T) -> f64 {
    let mut batch = 1usize;
    loop {
        let start = Instant::now();
        for _ in 0..batch {
            black_box(f());
        }
        if start.elapsed().as_millis() >= 10 || batch >= 1 << 20 {
            break;
        }
        batch *= 4;
    }
    let mut samples: Vec<f64> = (0..9)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            start.elapsed().as_secs_f64() / batch as f64
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn report(name: &str, serial: f64, parallel: f64, threads: usize) {
    println!(
        "{name:<32} serial {:>9.3} ms   {threads} threads {:>9.3} ms   speedup {:>5.2}x",
        serial * 1e3,
        parallel * 1e3,
        serial / parallel
    );
}

fn bench_training_step(threads: usize) {
    // One epoch over a 256-row batch of 64-dim IRs — the paper's hot
    // training loop, exercising the sharded-gradient path end to end.
    let mut rng = XorShiftRng::new(7);
    let irs = Matrix::gaussian(256, 64, &mut rng);
    let config = ReprConfig {
        epochs: 1,
        batch_size: 256,
        ..ReprConfig::fast(64)
    };
    let step = || ReprModel::train(black_box(&irs), &config).unwrap();
    runtime::set_threads(1);
    let serial = time_median(step);
    runtime::set_threads(threads);
    let parallel = time_median(step);
    runtime::set_threads(0);
    report("vae_train_step_256x64", serial, parallel, threads);
}

fn bench_matmul(threads: usize) {
    let mut rng = XorShiftRng::new(8);
    let a = Matrix::gaussian(512, 256, &mut rng);
    let b = Matrix::gaussian(256, 512, &mut rng);
    let f = || a.matmul(black_box(&b));
    runtime::set_threads(1);
    let serial = time_median(f);
    runtime::set_threads(threads);
    let parallel = time_median(f);
    runtime::set_threads(0);
    report("matmul_512x256x512", serial, parallel, threads);
}

fn main() {
    banner("parallel runtime: serial vs sharded");
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("hardware threads: {threads}");
    if threads == 1 {
        println!("(single-core host: both paths run the same inline serial code)");
    }
    bench_matmul(threads.max(2));
    bench_training_step(threads.max(2));
}
