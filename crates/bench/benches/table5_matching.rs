//! Table V: supervised matching P/R/F1 — VAER^LSA vs DeepER vs
//! DeepMatcher vs DITTO, trained on each domain's full training split.
//!
//! Also records the training times into the bench cache so the Table VI
//! target can print them without re-running everything.

use vaer_baselines::{
    Baseline, DeepEr, DeepErConfig, DeepMatcher, DeepMatcherConfig, Ditto, DittoConfig,
};
use vaer_bench::paper::{DOMAIN_ORDER, TABLE_V};
use vaer_bench::{
    banner, cache, dataset, domains_from_env, fmt_metric, scale_from_env, seed_from_env,
};
use vaer_core::pipeline::{Pipeline, PipelineConfig};
use vaer_data::domains::Domain;

fn main() {
    banner("Table V — matching P/R/F1 (VAER^LSA vs DER vs DM vs DITTO)");
    let scale = scale_from_env();
    let seed = seed_from_env();
    println!(
        "{:<8} | {:>17} | {:>17} | {:>17} | {:>17}",
        "Domain", "VAER (paper F1)", "DER (paper F1)", "DM (paper F1)", "DITTO (paper F1)"
    );
    let mut time_rows = Vec::new();
    for domain in domains_from_env() {
        let ds = dataset(domain, scale, seed);
        let di = Domain::ALL
            .iter()
            .position(|&d| d == domain)
            .expect("known domain");

        let mut config = PipelineConfig::paper();
        config.seed = seed;
        let pipeline = Pipeline::fit(&ds, &config).expect("VAER pipeline");
        let vaer = pipeline.evaluate(&ds.test_pairs);

        let der = DeepEr::train(&ds, &DeepErConfig::default()).expect("DeepER");
        let der_eval = der.evaluate(&ds, &ds.test_pairs);
        let dm = DeepMatcher::train(&ds, &DeepMatcherConfig::default()).expect("DeepMatcher");
        let dm_eval = dm.evaluate(&ds, &ds.test_pairs);
        let ditto = Ditto::train(&ds, &DittoConfig::default()).expect("DITTO");
        let ditto_eval = ditto.evaluate(&ds, &ds.test_pairs);

        let paper = TABLE_V[di];
        let cell = |m: vaer_stats::metrics::PrF1, p: (f32, f32, f32)| {
            format!(
                "{}/{}/{} ({})",
                fmt_metric(m.precision),
                fmt_metric(m.recall),
                fmt_metric(m.f1),
                fmt_metric(p.2)
            )
        };
        println!(
            "{:<8} | {:>17} | {:>17} | {:>17} | {:>17}",
            DOMAIN_ORDER[di],
            cell(vaer, paper[0]),
            cell(der_eval, paper[1]),
            cell(dm_eval, paper[2]),
            cell(ditto_eval, paper[3]),
        );
        time_rows.push(format!(
            "{},{:.3},{:.3},{:.3},{:.3},{:.3}",
            DOMAIN_ORDER[di],
            pipeline.timings().repr_secs,
            pipeline.timings().match_secs,
            der.train_secs,
            dm.train_secs,
            ditto.train_secs
        ));
    }
    let key = format!("table6_{scale:?}_{seed}");
    cache::put(&key, &time_rows.join("\n"));
    println!("\nShape check: VAER F1 should be within a few points of the best");
    println!("baseline on every domain, as in the paper's Table V.");
    println!("(Training times cached for the Table VI target under key '{key}'.)");
}
