//! Micro-benchmarks of the hot kernels underneath every experiment:
//! matmul, one VAE training step, the W₂² distance, KDE evaluation,
//! LSH vs brute-force kNN, and one skip-gram epoch.
//!
//! Uses a self-contained `Instant` harness (median of timed batches)
//! since the workspace carries no external bench framework.

use std::hint::black_box;
use std::time::Instant;
use vaer_bench::banner;
use vaer_core::repr::{ReprConfig, ReprModel};
use vaer_embed::{SgnsConfig, SgnsEmbeddings};
use vaer_index::{BruteForceKnn, E2Lsh, KnnIndex};
use vaer_linalg::{Matrix, XorShiftRng};
use vaer_stats::gaussian::{w2_squared, DiagGaussian};
use vaer_stats::kde::Kde;

/// Runs `f` in timed batches and prints the median per-call time.
fn bench<T>(name: &str, mut f: impl FnMut() -> T) {
    // Calibrate: pick a batch size that takes roughly >= 10ms.
    let mut batch = 1usize;
    loop {
        let start = Instant::now();
        for _ in 0..batch {
            black_box(f());
        }
        if start.elapsed().as_millis() >= 10 || batch >= 1 << 20 {
            break;
        }
        batch *= 4;
    }
    let mut samples: Vec<f64> = (0..9)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            start.elapsed().as_secs_f64() / batch as f64
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    let median = samples[samples.len() / 2];
    let (value, unit) = if median >= 1.0 {
        (median, "s ")
    } else if median >= 1e-3 {
        (median * 1e3, "ms")
    } else if median >= 1e-6 {
        (median * 1e6, "µs")
    } else {
        (median * 1e9, "ns")
    };
    println!("{name:<28} {value:>9.3} {unit}/iter  (batch {batch})");
}

fn bench_matmul() {
    let mut rng = XorShiftRng::new(1);
    let a = Matrix::gaussian(128, 128, &mut rng);
    let b = Matrix::gaussian(128, 128, &mut rng);
    bench("matmul_128x128", || a.matmul(black_box(&b)));
}

fn bench_vae_epoch() {
    let mut rng = XorShiftRng::new(2);
    let irs = Matrix::gaussian(256, 64, &mut rng);
    let config = ReprConfig {
        epochs: 1,
        ..ReprConfig::default()
    };
    bench("vae_train_1_epoch_256x64", || {
        ReprModel::train(black_box(&irs), &config).unwrap()
    });
}

fn bench_w2() {
    let mut rng = XorShiftRng::new(3);
    let p = DiagGaussian::new(
        (0..64).map(|_| rng.gaussian()).collect(),
        (0..64).map(|_| rng.gaussian().abs() + 0.1).collect(),
    );
    let q = DiagGaussian::new(
        (0..64).map(|_| rng.gaussian()).collect(),
        (0..64).map(|_| rng.gaussian().abs() + 0.1).collect(),
    );
    bench("w2_squared_64d", || {
        w2_squared(black_box(&p), black_box(&q))
    });
}

fn bench_kde() {
    let mut rng = XorShiftRng::new(4);
    let samples: Vec<f32> = (0..1000).map(|_| rng.gaussian()).collect();
    let kde = Kde::fit(&samples).unwrap();
    bench("kde_density_1000_points", || kde.density(black_box(0.5)));
}

fn bench_knn() {
    let mut rng = XorShiftRng::new(5);
    let points: Vec<Vec<f32>> = (0..2000)
        .map(|_| (0..32).map(|_| rng.gaussian()).collect())
        .collect();
    let query: Vec<f32> = (0..32).map(|_| rng.gaussian()).collect();
    let brute = BruteForceKnn::build(points.clone());
    let lsh = E2Lsh::build_calibrated(points, 9);
    bench("knn_2000x32/brute_force", || {
        brute.knn(black_box(&query), 10)
    });
    bench("knn_2000x32/e2lsh", || lsh.knn(black_box(&query), 10));
}

fn bench_sgns() {
    let sequences: Vec<Vec<u32>> = (0..200)
        .map(|i| (0..8).map(|j| ((i * 7 + j * 3) % 100) as u32).collect())
        .collect();
    let counts = {
        let mut counts = vec![0u64; 100];
        for s in &sequences {
            for &t in s {
                counts[t as usize] += 1;
            }
        }
        counts
    };
    let config = SgnsConfig {
        dims: 32,
        epochs: 1,
        ..SgnsConfig::default()
    };
    bench("sgns_1_epoch_200x8", || {
        SgnsEmbeddings::train(black_box(&sequences), 100, &counts, &config)
    });
}

fn main() {
    banner("Micro-benchmarks — hot kernels");
    bench_matmul();
    bench_vae_epoch();
    bench_w2();
    bench_kde();
    bench_knn();
    bench_sgns();
}
