//! Micro-benchmarks of the hot kernels underneath every experiment:
//! matmul, one VAE training step, the W₂² distance, KDE evaluation,
//! LSH vs brute-force kNN, and one skip-gram epoch — plus a kernel
//! report (single-thread 256³ GFLOP/s of the blocked f32 kernels,
//! integer GOP/s of the int8 GEMM, the SIMD Wasserstein-feature kernel
//! vs its scalar reference, and tape allocations per step) written to
//! `BENCH_kernels.json` at the repo root.
//!
//! Uses the shared `vaer_bench::measure` harness (calibrated batches,
//! median-of-samples) since the workspace carries no external bench
//! framework.
//!
//! `VAER_BENCH_QUICK=1` runs only the kernel report with reduced
//! sampling and *asserts* that the blocked kernels are at least as fast
//! as the references and that the counting-allocator wrapper is free
//! when telemetry is off — the CI smoke mode. Cross-run GFLOP/s
//! regression verdicts live in `vaer-report` (which reads the history
//! this bench appends), not here.

use std::hint::black_box;
use vaer_bench::banner;
use vaer_bench::measure;
use vaer_bench::run_record::RunRecord;
use vaer_core::repr::{ReprConfig, ReprModel};
use vaer_embed::{SgnsConfig, SgnsEmbeddings};
use vaer_index::{BruteForceKnn, E2Lsh, KnnIndex};
use vaer_linalg::{
    distance_row, distance_row_scalar, i8_matmul_t, i8_matmul_t_reference, matmul_reference,
    matmul_t_reference, t_matmul_reference, DistanceOp, Matrix, QuantizedMatrix, XorShiftRng,
};
use vaer_nn::{Graph, ParamStore};
use vaer_stats::gaussian::{w2_squared, DiagGaussian};
use vaer_stats::kde::Kde;

/// Median seconds per call of `f`, over `samples` timed batches each
/// lasting at least `min_millis`.
fn median_secs<T>(samples: usize, min_millis: u128, f: impl FnMut() -> T) -> f64 {
    measure::steady_secs(samples, min_millis, f).median_secs
}

/// Runs `f` in timed batches and prints the median per-call time.
fn bench<T>(name: &str, f: impl FnMut() -> T) {
    let median = median_secs(9, 10, f);
    let (value, unit) = if median >= 1.0 {
        (median, "s ")
    } else if median >= 1e-3 {
        (median * 1e3, "ms")
    } else if median >= 1e-6 {
        (median * 1e6, "µs")
    } else {
        (median * 1e9, "ns")
    };
    println!("{name:<28} {value:>9.3} {unit}/iter");
}

fn bench_matmul() {
    let mut rng = XorShiftRng::new(1);
    let a = Matrix::gaussian(128, 128, &mut rng);
    let b = Matrix::gaussian(128, 128, &mut rng);
    bench("matmul_128x128", || a.matmul(black_box(&b)));
}

fn bench_vae_epoch() {
    let mut rng = XorShiftRng::new(2);
    let irs = Matrix::gaussian(256, 64, &mut rng);
    let config = ReprConfig {
        epochs: 1,
        ..ReprConfig::default()
    };
    bench("vae_train_1_epoch_256x64", || {
        ReprModel::train(black_box(&irs), &config).unwrap()
    });
}

fn bench_w2() {
    let mut rng = XorShiftRng::new(3);
    let p = DiagGaussian::new(
        (0..64).map(|_| rng.gaussian()).collect(),
        (0..64).map(|_| rng.gaussian().abs() + 0.1).collect(),
    );
    let q = DiagGaussian::new(
        (0..64).map(|_| rng.gaussian()).collect(),
        (0..64).map(|_| rng.gaussian().abs() + 0.1).collect(),
    );
    bench("w2_squared_64d", || {
        w2_squared(black_box(&p), black_box(&q))
    });
}

fn bench_kde() {
    let mut rng = XorShiftRng::new(4);
    let samples: Vec<f32> = (0..1000).map(|_| rng.gaussian()).collect();
    let kde = Kde::fit(&samples).unwrap();
    bench("kde_density_1000_points", || kde.density(black_box(0.5)));
}

fn bench_knn() {
    let mut rng = XorShiftRng::new(5);
    let points: Vec<Vec<f32>> = (0..2000)
        .map(|_| (0..32).map(|_| rng.gaussian()).collect())
        .collect();
    let query: Vec<f32> = (0..32).map(|_| rng.gaussian()).collect();
    let brute = BruteForceKnn::build(points.clone());
    let lsh = E2Lsh::build_calibrated(points, 9);
    bench("knn_2000x32/brute_force", || {
        brute.knn(black_box(&query), 10)
    });
    bench("knn_2000x32/e2lsh", || lsh.knn(black_box(&query), 10));
}

fn bench_sgns() {
    let sequences: Vec<Vec<u32>> = (0..200)
        .map(|i| (0..8).map(|j| ((i * 7 + j * 3) % 100) as u32).collect())
        .collect();
    let counts = {
        let mut counts = vec![0u64; 100];
        for s in &sequences {
            for &t in s {
                counts[t as usize] += 1;
            }
        }
        counts
    };
    let config = SgnsConfig {
        dims: 32,
        epochs: 1,
        ..SgnsConfig::default()
    };
    bench("sgns_1_epoch_200x8", || {
        SgnsEmbeddings::train(black_box(&sequences), 100, &counts, &config)
    });
}

/// One optimised-vs-reference comparison of the kernel report. Rates are
/// GFLOP/s for the f32 kernels and integer GOP/s for the int8 GEMM —
/// same 2N³ multiply-accumulate count either way.
struct KernelLine {
    name: &'static str,
    unit: &'static str,
    blocked_gflops: f64,
    reference_gflops: f64,
}

impl KernelLine {
    fn speedup(&self) -> f64 {
        self.blocked_gflops / self.reference_gflops
    }
}

/// Single-thread 256³ throughput of the blocked matmul kernels and the
/// int8 GEMM against their naive references, plus the fused SIMD
/// Wasserstein-feature kernel against its scalar reference (5 ops per
/// element over a 256×256 row sweep).
fn kernel_report(quick: bool) -> Vec<KernelLine> {
    const N: usize = 256;
    let (samples, min_ms) = if quick { (3, 5) } else { (9, 30) };
    let mut rng = XorShiftRng::new(7);
    let a = Matrix::gaussian(N, N, &mut rng);
    let b = Matrix::gaussian(N, N, &mut rng);
    let gflops = |secs: f64| 2.0 * (N as f64).powi(3) / secs / 1e9;
    vaer_linalg::runtime::set_threads(1);
    let mut lines = vec![
        KernelLine {
            name: "matmul",
            unit: "GFLOP/s",
            blocked_gflops: gflops(median_secs(samples, min_ms, || a.matmul(black_box(&b)))),
            reference_gflops: gflops(median_secs(samples, min_ms, || {
                matmul_reference(black_box(&a), black_box(&b))
            })),
        },
        KernelLine {
            name: "matmul_t",
            unit: "GFLOP/s",
            blocked_gflops: gflops(median_secs(samples, min_ms, || a.matmul_t(black_box(&b)))),
            reference_gflops: gflops(median_secs(samples, min_ms, || {
                matmul_t_reference(black_box(&a), black_box(&b))
            })),
        },
        KernelLine {
            name: "t_matmul",
            unit: "GFLOP/s",
            blocked_gflops: gflops(median_secs(samples, min_ms, || a.t_matmul(black_box(&b)))),
            reference_gflops: gflops(median_secs(samples, min_ms, || {
                t_matmul_reference(black_box(&a), black_box(&b))
            })),
        },
    ];
    // Int8 GEMM (quantized scoring fast lane): packed/blocked kernel vs
    // the naive triple loop, in integer GOP/s.
    let xq = QuantizedMatrix::quantize_per_row(&a);
    let wq = QuantizedMatrix::quantize_per_row(&b);
    lines.push(KernelLine {
        name: "i8_matmul_t",
        unit: "GOP/s  ",
        blocked_gflops: gflops(median_secs(samples, min_ms, || {
            i8_matmul_t(black_box(&xq), black_box(&wq))
        })),
        reference_gflops: gflops(median_secs(samples, min_ms, || {
            i8_matmul_t_reference(black_box(&xq), black_box(&wq))
        })),
    });
    // Fused Wasserstein distance features: AVX2-dispatched row kernel vs
    // the scalar reference, 5 ops per element (2 subs, 2 muls, 1 add).
    // The sweep cycles over 8 rows so the working set stays L1-resident
    // and the comparison measures compute, not memory bandwidth.
    const W2_ROWS: usize = 8;
    let sig_a = Matrix::gaussian(W2_ROWS, N, &mut rng).map(f32::abs);
    let sig_b = Matrix::gaussian(W2_ROWS, N, &mut rng).map(f32::abs);
    let w2_rate = |secs: f64| 5.0 * (N as f64).powi(2) / secs / 1e9;
    let mut out = vec![0.0f32; N];
    let fused_secs = median_secs(samples, min_ms, || {
        for i in 0..N {
            let r = i % W2_ROWS;
            distance_row(
                DistanceOp::W2,
                a.row(r),
                b.row(r),
                sig_a.row(r),
                sig_b.row(r),
                &mut out,
            );
        }
        black_box(out[0])
    });
    let scalar_secs = median_secs(samples, min_ms, || {
        for i in 0..N {
            let r = i % W2_ROWS;
            distance_row_scalar(
                DistanceOp::W2,
                a.row(r),
                b.row(r),
                sig_a.row(r),
                sig_b.row(r),
                &mut out,
            );
        }
        black_box(out[0])
    });
    lines.push(KernelLine {
        name: "w2_features",
        unit: "GOP/s  ",
        blocked_gflops: w2_rate(fused_secs),
        reference_gflops: w2_rate(scalar_secs),
    });
    vaer_linalg::runtime::set_threads(0);
    lines
}

/// Times one dense forward/backward step on a reused tape and counts
/// fresh heap allocations once the pool is warm (the zero-realloc
/// contract says: zero).
fn tape_report(quick: bool) -> (f64, usize) {
    let mut rng = XorShiftRng::new(8);
    let x = Matrix::gaussian(256, 64, &mut rng);
    let y = Matrix::gaussian(256, 16, &mut rng);
    let mut store = ParamStore::new();
    let w1 = store.add("bench.w1", Matrix::gaussian(64, 32, &mut rng));
    let w2 = store.add("bench.w2", Matrix::gaussian(32, 16, &mut rng));
    let mut g = Graph::new();
    let step = |g: &mut Graph| {
        g.reset();
        let xt = g.input_ref(&x);
        let yt = g.input_ref(&y);
        let w1t = g.param(&store, w1);
        let h1 = g.matmul(xt, w1t);
        let h = g.relu(h1);
        let w2t = g.param(&store, w2);
        let pred = g.matmul(h, w2t);
        let diff = g.sub(pred, yt);
        let sq = g.square(diff);
        let loss = g.mean_all(sq);
        g.backward(loss);
        black_box(g.param_grads());
    };
    // Warm the pool (backward's grad buffers join it one step after the
    // value buffers), then check the counter stays flat.
    step(&mut g);
    step(&mut g);
    let warm = g.fresh_allocs();
    for _ in 0..10 {
        step(&mut g);
    }
    let warm_allocs = g.fresh_allocs() - warm;
    let (samples, min_ms) = if quick { (3, 5) } else { (9, 20) };
    let secs = median_secs(samples, min_ms, || step(&mut g));
    (secs, warm_allocs)
}

/// The `BENCH_kernels.json` path at the repo root.
fn kernel_json_path() -> std::path::PathBuf {
    let mut path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    path.pop();
    path.pop();
    path.push("BENCH_kernels.json");
    path
}

/// Hand-rolled JSON for the kernel report (the workspace carries no
/// serialisation dependency).
fn write_kernel_json(lines: &[KernelLine], tape_secs: f64, tape_allocs: usize) {
    let mut json = String::from("{\n  \"matmul_n\": 256,\n  \"threads\": 1,\n  \"kernels\": {\n");
    for (i, l) in lines.iter().enumerate() {
        let sep = if i + 1 == lines.len() { "" } else { "," };
        json.push_str(&format!(
            "    \"{}\": {{\"blocked_gflops\": {:.2}, \"reference_gflops\": {:.2}, \"speedup\": {:.2}}}{}\n",
            l.name, l.blocked_gflops, l.reference_gflops, l.speedup(), sep
        ));
    }
    json.push_str(&format!(
        "  }},\n  \"tape\": {{\"secs_per_step\": {:.6}, \"fresh_allocs_per_step_warm\": {}}}\n}}\n",
        tape_secs, tape_allocs
    ));
    let path = kernel_json_path();
    match std::fs::write(&path, &json) {
        Ok(()) => println!("(report written to {})", path.display()),
        Err(e) => println!("(could not write {}: {e})", path.display()),
    }
}

/// Measures the observability tax on the hottest kernel: the 256³
/// matmul at `VAER_OBS=off` (one relaxed atomic load per call) versus
/// `VAER_OBS=summary` (counter adds + one histogram record per call).
fn obs_overhead_report(quick: bool, rec: &mut RunRecord) {
    const N: usize = 256;
    let (samples, min_ms) = if quick { (3, 5) } else { (9, 30) };
    let mut rng = XorShiftRng::new(9);
    let a = Matrix::gaussian(N, N, &mut rng);
    let b = Matrix::gaussian(N, N, &mut rng);
    vaer_linalg::runtime::set_threads(1);
    let prev = vaer_obs::level();
    vaer_obs::set_level(vaer_obs::Level::Off);
    let off = median_secs(samples, min_ms, || a.matmul(black_box(&b)));
    vaer_obs::set_level(vaer_obs::Level::Summary);
    let summary = median_secs(samples, min_ms, || a.matmul(black_box(&b)));
    vaer_obs::set_level(prev);
    vaer_linalg::runtime::set_threads(0);
    println!(
        "obs_overhead_256^3           off {:>8.3} ms | summary {:>8.3} ms | off-path delta {:+.2}%",
        off * 1e3,
        summary * 1e3,
        100.0 * (off / summary - 1.0)
    );
    rec.num("obs_off_matmul_secs", off)
        .num("obs_summary_matmul_secs", summary);
    if quick {
        // The off path must not measurably exceed the instrumented path.
        // Container timing noise alone reaches tens of percent here, so
        // the bound is generous: it only trips on a structural regression
        // (a lock or allocation sneaking onto the off path), not jitter.
        assert!(
            off <= summary * 1.25,
            "VAER_OBS=off matmul slower than instrumented path: {:.3} ms vs {:.3} ms",
            off * 1e3,
            summary * 1e3
        );
    }
}

/// Measures what the counting `#[global_allocator]` wrapper costs when
/// telemetry is off, and expresses it as a share of the micro bench's
/// hottest kernel.
///
/// Three measurements, min-of-samples (mins compare implementations;
/// medians absorb scheduler noise — here we want the speed of light):
///
/// * `direct`: a raw `System.alloc`/`dealloc` pair, bypassing the
///   wrapper entirely (the only way to measure "no wrapper" in-process);
/// * `wrapped_off`: the same pair through the global allocator with
///   telemetry off — the passthrough path everyone pays all the time;
/// * `wrapped_summary`: the same with counting enabled, for context.
///
/// The ≤2% gate multiplies the per-pair passthrough delta by the
/// allocation rate of the 256³ matmul (counted, not guessed) — i.e. the
/// wrapper's actual share of micro-bench kernel time. A lock, env read,
/// or recursion on the off path inflates the delta by orders of
/// magnitude and trips it instantly; sub-nanosecond jitter cannot.
fn alloc_overhead_report(quick: bool, rec: &mut RunRecord) {
    use std::alloc::{GlobalAlloc, Layout, System};
    const N: usize = 256;
    const SIZES: [usize; 4] = [64, 256, 1024, 4096];
    let (samples, min_ms) = if quick { (5, 5) } else { (11, 20) };
    let layouts: Vec<Layout> = SIZES
        .iter()
        .map(|&s| Layout::from_size_align(s, 8).expect("static layout"))
        .collect();

    let prev = vaer_obs::level();
    vaer_obs::set_level(vaer_obs::Level::Off);
    // Per *pair* (one alloc + one dealloc), averaged over the size mix.
    let pair = |m: measure::Measured| m.min_secs / SIZES.len() as f64;
    let wrapped_off = pair(measure::steady_secs(samples, min_ms, || {
        for layout in &layouts {
            // SAFETY: layout has nonzero size; every pointer is freed
            // with the same layout it was allocated with, via the same
            // (global) allocator.
            unsafe {
                let p = std::alloc::alloc(*layout);
                black_box(p);
                std::alloc::dealloc(p, *layout);
            }
        }
    }));
    let direct = pair(measure::steady_secs(samples, min_ms, || {
        for layout in &layouts {
            // SAFETY: same invariants as above, straight to `System` —
            // this bypasses the `#[global_allocator]` wrapper.
            unsafe {
                let p = System.alloc(*layout);
                black_box(p);
                System.dealloc(p, *layout);
            }
        }
    }));

    // Count the matmul's allocation rate with the counter itself, then
    // time it — both at summary so counting is live.
    vaer_obs::set_level(vaer_obs::Level::Summary);
    let wrapped_summary = pair(measure::steady_secs(samples, min_ms, || {
        for layout in &layouts {
            // SAFETY: same invariants as above.
            unsafe {
                let p = std::alloc::alloc(*layout);
                black_box(p);
                std::alloc::dealloc(p, *layout);
            }
        }
    }));
    let mut rng = XorShiftRng::new(10);
    let a = Matrix::gaussian(N, N, &mut rng);
    let b = Matrix::gaussian(N, N, &mut rng);
    vaer_linalg::runtime::set_threads(1);
    let before = vaer_obs::alloc::stats();
    const COUNT_RUNS: u64 = 8;
    for _ in 0..COUNT_RUNS {
        black_box(a.matmul(black_box(&b)));
    }
    let allocs_per_matmul =
        (vaer_obs::alloc::stats().allocs - before.allocs) as f64 / COUNT_RUNS as f64;
    let matmul_secs = median_secs(samples, min_ms, || a.matmul(black_box(&b)));
    vaer_linalg::runtime::set_threads(0);
    vaer_obs::set_level(prev);

    let pair_delta = (wrapped_off - direct).max(0.0);
    let kernel_share_pct = 100.0 * pair_delta * allocs_per_matmul / matmul_secs;
    println!(
        "alloc_pair                   direct {:>6.1} ns | wrapped(off) {:>6.1} ns | wrapped(summary) {:>6.1} ns",
        direct * 1e9,
        wrapped_off * 1e9,
        wrapped_summary * 1e9
    );
    println!(
        "alloc_wrapper_cost           {allocs_per_matmul:.0} allocs/matmul x {:.2} ns -> {kernel_share_pct:.4}% of kernel time",
        pair_delta * 1e9
    );
    rec.num("alloc_pair_direct_secs", direct)
        .num("alloc_pair_wrapped_off_secs", wrapped_off)
        .num("alloc_pair_wrapped_summary_secs", wrapped_summary)
        .num("alloc_wrapper_kernel_share_pct", kernel_share_pct);
    if quick {
        assert!(
            kernel_share_pct <= 2.0,
            "allocator wrapper costs {kernel_share_pct:.3}% of micro kernel time (gate: 2%)"
        );
        // Structural backstop on the raw pair: the off path is one
        // relaxed load and a branch, so anything past 2x direct means a
        // lock, an env read, or recursion crept in.
        assert!(
            wrapped_off <= direct * 2.0 + 20e-9,
            "off-path alloc pair {:.1} ns vs direct {:.1} ns",
            wrapped_off * 1e9,
            direct * 1e9
        );
    }
}

fn bench_kernels(quick: bool) -> RunRecord {
    println!("\n-- kernel report (single thread, 256^3) --");
    let lines = kernel_report(quick);
    for l in &lines {
        println!(
            "{:<28} {:>7.2} {} optimised | {:>7.2} {} reference | {:>5.2}x",
            l.name,
            l.blocked_gflops,
            l.unit,
            l.reference_gflops,
            l.unit,
            l.speedup()
        );
    }
    let (tape_secs, tape_allocs) = tape_report(quick);
    println!(
        "{:<28} {:>9.3} µs/step, {} fresh allocs/step warm",
        "tape_step_256x64",
        tape_secs * 1e6,
        tape_allocs
    );
    write_kernel_json(&lines, tape_secs, tape_allocs);
    if quick {
        // CI smoke: the blocked kernels must never lose to the textbook
        // loops, and a warm tape must not touch the heap.
        for l in &lines {
            assert!(
                l.speedup() >= 1.0,
                "{} blocked kernel slower than reference ({:.2}x)",
                l.name,
                l.speedup()
            );
        }
        assert_eq!(tape_allocs, 0, "warm tape step allocated");
    }
    // Trimmed structured record of the kernel report. Cross-run GFLOP/s
    // regression verdicts are `vaer-report`'s job (it reads the history
    // this record joins, with a noise band learned from that history).
    let mut rec = RunRecord::new("micro");
    for l in &lines {
        rec.num(&format!("{}_blocked_gflops", l.name), l.blocked_gflops)
            .num(&format!("{}_speedup", l.name), l.speedup());
    }
    rec.num("tape_secs_per_step", tape_secs)
        .int("tape_warm_allocs", tape_allocs as u64);
    rec
}

fn main() {
    let quick = vaer_bench::quick_from_env();
    banner("Micro-benchmarks — hot kernels");
    if !quick {
        bench_matmul();
        bench_vae_epoch();
        bench_w2();
        bench_kde();
        bench_knn();
        bench_sgns();
    }
    let mut rec = bench_kernels(quick);
    obs_overhead_report(quick, &mut rec);
    alloc_overhead_report(quick, &mut rec);
    rec.append();
}
