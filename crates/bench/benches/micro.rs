//! Criterion micro-benchmarks of the hot kernels underneath every
//! experiment: matmul, one VAE training step, the W₂² distance, KDE
//! evaluation, LSH vs brute-force kNN, and one skip-gram epoch.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use vaer_core::repr::{ReprConfig, ReprModel};
use vaer_embed::{SgnsConfig, SgnsEmbeddings};
use vaer_index::{BruteForceKnn, E2Lsh, KnnIndex};
use vaer_linalg::{Matrix, XorShiftRng};
use vaer_stats::gaussian::{w2_squared, DiagGaussian};
use vaer_stats::kde::Kde;

fn bench_matmul(c: &mut Criterion) {
    let mut rng = XorShiftRng::new(1);
    let a = Matrix::gaussian(128, 128, &mut rng);
    let b = Matrix::gaussian(128, 128, &mut rng);
    c.bench_function("matmul_128x128", |bench| {
        bench.iter(|| black_box(a.matmul(black_box(&b))))
    });
}

fn bench_vae_epoch(c: &mut Criterion) {
    let mut rng = XorShiftRng::new(2);
    let irs = Matrix::gaussian(256, 64, &mut rng);
    let config = ReprConfig { epochs: 1, ..ReprConfig::default() };
    c.bench_function("vae_train_1_epoch_256x64", |bench| {
        bench.iter(|| black_box(ReprModel::train(black_box(&irs), &config).unwrap()))
    });
}

fn bench_w2(c: &mut Criterion) {
    let mut rng = XorShiftRng::new(3);
    let p = DiagGaussian::new(
        (0..64).map(|_| rng.gaussian()).collect(),
        (0..64).map(|_| rng.gaussian().abs() + 0.1).collect(),
    );
    let q = DiagGaussian::new(
        (0..64).map(|_| rng.gaussian()).collect(),
        (0..64).map(|_| rng.gaussian().abs() + 0.1).collect(),
    );
    c.bench_function("w2_squared_64d", |bench| {
        bench.iter(|| black_box(w2_squared(black_box(&p), black_box(&q))))
    });
}

fn bench_kde(c: &mut Criterion) {
    let mut rng = XorShiftRng::new(4);
    let samples: Vec<f32> = (0..1000).map(|_| rng.gaussian()).collect();
    let kde = Kde::fit(&samples).unwrap();
    c.bench_function("kde_density_1000_points", |bench| {
        bench.iter(|| black_box(kde.density(black_box(0.5))))
    });
}

fn bench_knn(c: &mut Criterion) {
    let mut rng = XorShiftRng::new(5);
    let points: Vec<Vec<f32>> =
        (0..2000).map(|_| (0..32).map(|_| rng.gaussian()).collect()).collect();
    let query: Vec<f32> = (0..32).map(|_| rng.gaussian()).collect();
    let brute = BruteForceKnn::build(points.clone());
    let lsh = E2Lsh::build_calibrated(points, 9);
    let mut group = c.benchmark_group("knn_2000x32");
    group.bench_function("brute_force", |bench| {
        bench.iter(|| black_box(brute.knn(black_box(&query), 10)))
    });
    group.bench_function("e2lsh", |bench| {
        bench.iter(|| black_box(lsh.knn(black_box(&query), 10)))
    });
    group.finish();
}

fn bench_sgns(c: &mut Criterion) {
    let sequences: Vec<Vec<u32>> =
        (0..200).map(|i| (0..8).map(|j| ((i * 7 + j * 3) % 100) as u32).collect()).collect();
    let counts = {
        let mut counts = vec![0u64; 100];
        for s in &sequences {
            for &t in s {
                counts[t as usize] += 1;
            }
        }
        counts
    };
    let config = SgnsConfig { dims: 32, epochs: 1, ..SgnsConfig::default() };
    c.bench_function("sgns_1_epoch_200x8", |bench| {
        bench.iter(|| {
            black_box(SgnsEmbeddings::train(black_box(&sequences), 100, &counts, &config))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_matmul, bench_vae_epoch, bench_w2, bench_kde, bench_knn, bench_sgns
}
criterion_main!(benches);
