//! Ablation: the Distance layer's design (paper §IV-A).
//!
//! The paper compares distributions with the full W₂² (means *and*
//! standard deviations). This ablation trains the matcher with W₂,
//! means-only, and sigmas-only distance vectors to quantify how much the
//! uncertainty component contributes.

use vaer_bench::{banner, dataset, fit_repr_bundle, fmt_metric, scale_from_env, seed_from_env};
use vaer_core::matcher::{DistanceKind, MatcherConfig, PairExamples, SiameseMatcher};
use vaer_data::domains::Domain;
use vaer_embed::IrKind;

fn main() {
    banner("Ablation — Distance layer: W₂² vs Mahalanobis vs μ-only vs σ-only");
    let scale = scale_from_env();
    let seed = seed_from_env();
    let kinds = [
        DistanceKind::W2,
        DistanceKind::Mahalanobis,
        DistanceKind::MuOnly,
        DistanceKind::SigmaOnly,
    ];
    println!(
        "{:<8} | {:>8} {:>8} {:>8} {:>8}",
        "Domain", "W2", "mahal", "mu-only", "sig-only"
    );
    for domain in [
        Domain::Restaurants,
        Domain::Cosmetics,
        Domain::Beer,
        Domain::Software,
    ] {
        let ds = dataset(domain, scale, seed);
        let bundle = fit_repr_bundle(&ds, IrKind::Lsa, 64, seed);
        let train = PairExamples::build(&bundle.irs_a, &bundle.irs_b, &ds.train_pairs);
        let test = PairExamples::build(&bundle.irs_a, &bundle.irs_b, &ds.test_pairs);
        print!("{:<8} |", ds.name);
        for kind in kinds {
            let config = MatcherConfig {
                distance: kind,
                seed,
                ..MatcherConfig::default()
            };
            let f1 = SiameseMatcher::train(&bundle.repr, &train, &config)
                .map(|m| m.evaluate(&test).f1)
                .unwrap_or(0.0);
            print!(" {:>8}", fmt_metric(f1));
        }
        println!();
    }
    println!("\nShape check: W₂ ≈ Mahalanobis ≥ μ-only ≥ σ-only on most domains —");
    println!("the paper's §IV-A: both distributional distances work, and comparing");
    println!("full distributions beats comparing points.");
}
