//! Figure 5: active-learning F1 as a function of labelled samples.
//!
//! Prints each domain's learning curve (labels used → test F1). Reuses
//! the curves cached by `table8_active_learning` when available;
//! otherwise runs the AL loop for a representative subset of domains.

use vaer_bench::{banner, cache, dataset, fit_repr_bundle, scale_from_env, seed_from_env};
use vaer_core::active::{ActiveConfig, ActiveLearner};
use vaer_core::matcher::{MatcherConfig, PairExamples};
use vaer_data::domains::{Domain, Scale};
use vaer_embed::IrKind;

fn main() {
    banner("Figure 5 — active learning F1 vs labelled samples");
    let scale = scale_from_env();
    let seed = seed_from_env();
    let key = format!("fig5_{scale:?}_{seed}");
    let curves: Vec<(String, Vec<(usize, f32)>)> = match cache::get(&key) {
        Some(text) if !text.trim().is_empty() => text
            .lines()
            .filter_map(|l| {
                let (name, rest) = l.split_once('|')?;
                let points = rest
                    .split(';')
                    .filter_map(|p| {
                        let (x, y) = p.split_once(':')?;
                        Some((x.parse().ok()?, y.parse().ok()?))
                    })
                    .collect();
                Some((name.to_string(), points))
            })
            .collect(),
        _ => {
            println!("(no cache found — running the AL loop on four domains)");
            let budget = match scale {
                Scale::Tiny => 40usize,
                Scale::Small => 60,
                Scale::Paper => 100,
            };
            let mut out = Vec::new();
            for domain in [
                Domain::Restaurants,
                Domain::Citations2,
                Domain::Software,
                Domain::Beer,
            ] {
                let ds = dataset(domain, scale, seed);
                let bundle = fit_repr_bundle(&ds, IrKind::Lsa, 64, seed);
                let oracle = ds.oracle();
                let test = PairExamples::build(&bundle.irs_a, &bundle.irs_b, &ds.test_pairs);
                let config = ActiveConfig {
                    iterations: 200,
                    matcher: MatcherConfig::default(),
                    seed,
                    ..ActiveConfig::default()
                };
                let mut learner = ActiveLearner::with_latents(
                    &bundle.repr,
                    &bundle.irs_a,
                    &bundle.irs_b,
                    bundle.lat_a.clone(),
                    bundle.lat_b.clone(),
                    config,
                );
                learner.run(&oracle, budget, Some(&test)).expect("AL run");
                let points = learner
                    .history()
                    .iter()
                    .filter_map(|c| c.test_f1.map(|f1| (c.labels_used, f1)))
                    .collect();
                out.push((ds.name.clone(), points));
            }
            out
        }
    };
    for (name, points) in &curves {
        println!("\n{name}:");
        println!("  {:>7} {:>6}  curve", "labels", "F1");
        for &(labels, f1) in points {
            let bar_len = (f1 * 40.0).round() as usize;
            println!("  {:>7} {:>6.2}  {}", labels, f1, "#".repeat(bar_len));
        }
    }
    println!("\nShape check: curves should rise steeply in the first iterations and");
    println!("flatten, as in the paper's Fig. 5 — most of Full F1 is reached early.");
}
