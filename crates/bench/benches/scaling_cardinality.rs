//! Scaling study supporting the paper's Table VI analysis paragraph:
//! "VAER's representation training time is dominated by the size of the
//! input tables, while VAER's matching training time … is dominated by
//! the size of the training set."
//!
//! Sweeps table cardinality at fixed training-set size and vice versa,
//! printing the two timing columns; repr time should track the first
//! sweep, match time the second.

use std::time::Instant;
use vaer_bench::{banner, seed_from_env};
use vaer_core::entity::IrTable;
use vaer_core::matcher::{MatcherConfig, PairExamples, SiameseMatcher};
use vaer_core::repr::{ReprConfig, ReprModel};
use vaer_data::domains::{Domain, DomainSpec, Scale};
use vaer_data::PairSet;
use vaer_embed::{fit_ir_model, IrKind};

fn fit_parts(ds: &vaer_data::Dataset, train: &PairSet, seed: u64) -> (f64, f64) {
    let arity = ds.table_a.schema.arity();
    let sentences = ds.all_sentences();
    let ir_model = fit_ir_model(IrKind::Lsa, &sentences, &ds.tables_raw(), 64, seed);
    let a: Vec<String> = ds.table_a.sentences().map(str::to_owned).collect();
    let b: Vec<String> = ds.table_b.sentences().map(str::to_owned).collect();
    let irs_a = IrTable::new(arity, ir_model.encode_batch(&a));
    let irs_b = IrTable::new(arity, ir_model.encode_batch(&b));
    let t0 = Instant::now();
    let all = irs_a.irs.vconcat(&irs_b.irs);
    let (repr, _) = ReprModel::train(
        &all,
        &ReprConfig {
            ir_dim: 64,
            seed,
            ..Default::default()
        },
    )
    .unwrap();
    let repr_secs = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    let examples = PairExamples::build(&irs_a, &irs_b, train);
    SiameseMatcher::train(
        &repr,
        &examples,
        &MatcherConfig {
            seed,
            ..Default::default()
        },
    )
    .unwrap();
    let match_secs = t1.elapsed().as_secs_f64();
    (repr_secs, match_secs)
}

fn main() {
    banner("Scaling — repr time vs table size, match time vs train size");
    let seed = seed_from_env();
    // Sweep 1: growing tables, fixed-size training set.
    println!("\nsweep 1: table cardinality grows, training pairs fixed (~60)");
    println!("{:>8} {:>10} {:>11}", "rows", "repr (s)", "match (s)");
    for scale in [Scale::Tiny, Scale::Small, Scale::Paper] {
        let ds = DomainSpec::new(Domain::Citations1, scale).generate(seed);
        let mut train = ds.train_pairs.clone();
        train.pairs.truncate(60);
        if train.num_positive() == 0 || train.num_negative() == 0 {
            continue;
        }
        let (repr_secs, match_secs) = fit_parts(&ds, &train, seed);
        println!(
            "{:>8} {:>10.2} {:>11.2}",
            ds.table_a.len() + ds.table_b.len(),
            repr_secs,
            match_secs
        );
    }
    // Sweep 2: fixed tables, growing training set.
    println!("\nsweep 2: tables fixed (Paper scale), training pairs grow");
    println!("{:>8} {:>10} {:>11}", "pairs", "repr (s)", "match (s)");
    let ds = DomainSpec::new(Domain::Citations1, Scale::Paper).generate(seed);
    for frac in [0.25f32, 0.5, 1.0] {
        let mut train = ds.train_pairs.clone();
        let keep = ((train.len() as f32) * frac) as usize;
        train.pairs.truncate(keep.max(16));
        if train.num_positive() == 0 || train.num_negative() == 0 {
            continue;
        }
        let (repr_secs, match_secs) = fit_parts(&ds, &train, seed);
        println!(
            "{:>8} {:>10.2} {:>11.2}",
            train.len(),
            repr_secs,
            match_secs
        );
    }
    println!("\nShape check: repr seconds grow down sweep 1 while match seconds stay");
    println!("flat; match seconds grow down sweep 2 while repr seconds stay flat —");
    println!("the cost decomposition behind the paper's Table VI discussion.");
}
