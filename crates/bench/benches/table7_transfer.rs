//! Table VII: local vs transferred representation models.
//!
//! A VAER^LSA representation model is trained once on Citations 2 and
//! reused — without retraining — on the other eight domains (tables
//! truncated/padded to arity 4, as in §VI-D). Reported: repr recall@10
//! and matching F1, local vs transferred.

use vaer_bench::paper::{DOMAIN_ORDER, TABLE_VII};
use vaer_bench::{banner, dataset, fmt_metric, scale_from_env, seed_from_env};
use vaer_core::pipeline::{Pipeline, PipelineConfig};
use vaer_core::transfer::adapt_dataset_arity;
use vaer_data::domains::Domain;

fn main() {
    banner("Table VII — recall/F1 with local vs transferred repr. models");
    let scale = scale_from_env();
    let seed = seed_from_env();
    let source_arity = Domain::Citations2.meta().arity;

    // Train the transferred model on Citations 2.
    let source_ds = dataset(Domain::Citations2, scale, seed);
    let mut config = PipelineConfig::paper();
    config.seed = seed;
    let source = Pipeline::fit(&source_ds, &config).expect("source pipeline");
    let transferred_repr = source.repr().clone();
    println!(
        "(transferred model: VAER^LSA trained on {} — {} tuples)",
        source_ds.name,
        source_ds.table_a.len() + source_ds.table_b.len()
    );
    println!(
        "{:<8} | {:>7} {:>7} {:>6} | {:>7} {:>7} {:>6} | paper Δrec / ΔF1",
        "Domain", "rec loc", "rec tra", "Δ", "F1 loc", "F1 tra", "Δ"
    );
    for domain in Domain::ALL {
        if domain == Domain::Citations2 {
            continue;
        }
        let di = Domain::ALL
            .iter()
            .position(|&d| d == domain)
            .expect("domain");
        let raw = dataset(domain, scale, seed);
        let ds = adapt_dataset_arity(&raw, source_arity);
        // Local model: trained on this domain's own (arity-adapted) IRs.
        let local = Pipeline::fit(&ds, &config).expect("local pipeline");
        let local_recall = local.recall_at_k(&ds.duplicates, 10);
        let local_f1 = local.evaluate(&ds.test_pairs).f1;
        // Transferred model: no representation training at all.
        let transferred = Pipeline::fit_transferred(&ds, &config, transferred_repr.clone())
            .expect("transferred pipeline");
        assert_eq!(transferred.timings().repr_secs, 0.0);
        let transf_recall = transferred.recall_at_k(&ds.duplicates, 10);
        let transf_f1 = transferred.evaluate(&ds.test_pairs).f1;
        let p = TABLE_VII[di];
        println!(
            "{:<8} | {:>7} {:>7} {:>+6.2} | {:>7} {:>7} {:>+6.2} | {:+.2} / {:+.2}",
            DOMAIN_ORDER[di],
            fmt_metric(local_recall),
            fmt_metric(transf_recall),
            transf_recall - local_recall,
            fmt_metric(local_f1),
            fmt_metric(transf_f1),
            transf_f1 - local_f1,
            p.1 - p.0,
            p.3 - p.2,
        );
    }
    println!("\nShape check: deltas should be small (|Δ| ≲ 0.05 for most domains) —");
    println!("the paper's claim is that transfer costs almost nothing in quality");
    println!("while eliminating representation training time entirely.");
}
