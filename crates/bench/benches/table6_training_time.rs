//! Table VI: training times (seconds) — VAER's decoupled representation +
//! matching stages vs the end-to-end baselines.
//!
//! Reuses the timings cached by the `table5_matching` target when
//! available (same scale/seed); otherwise re-runs the suite.

use vaer_baselines::{DeepEr, DeepErConfig, DeepMatcher, DeepMatcherConfig, Ditto, DittoConfig};
use vaer_bench::paper::{DOMAIN_ORDER, TABLE_VI};
use vaer_bench::{banner, cache, dataset, domains_from_env, scale_from_env, seed_from_env};
use vaer_core::pipeline::{Pipeline, PipelineConfig};
use vaer_data::domains::Domain;

fn main() {
    banner("Table VI — training times (s)");
    let scale = scale_from_env();
    let seed = seed_from_env();
    let key = format!("table6_{scale:?}_{seed}");
    let rows: Vec<(String, f64, f64, f64, f64, f64)> = match cache::get(&key) {
        Some(text) if !text.trim().is_empty() => text
            .lines()
            .filter_map(|l| {
                let parts: Vec<&str> = l.split(',').collect();
                if parts.len() != 6 {
                    return None;
                }
                Some((
                    parts[0].to_string(),
                    parts[1].parse().ok()?,
                    parts[2].parse().ok()?,
                    parts[3].parse().ok()?,
                    parts[4].parse().ok()?,
                    parts[5].parse().ok()?,
                ))
            })
            .collect(),
        _ => {
            println!("(no cache found — running the matching suite)");
            let mut rows = Vec::new();
            for domain in domains_from_env() {
                let ds = dataset(domain, scale, seed);
                let di = Domain::ALL
                    .iter()
                    .position(|&d| d == domain)
                    .expect("domain");
                let mut config = PipelineConfig::paper();
                config.seed = seed;
                let pipeline = Pipeline::fit(&ds, &config).expect("VAER pipeline");
                let der = DeepEr::train(&ds, &DeepErConfig::default()).expect("DeepER");
                let dm =
                    DeepMatcher::train(&ds, &DeepMatcherConfig::default()).expect("DeepMatcher");
                let ditto = Ditto::train(&ds, &DittoConfig::default()).expect("DITTO");
                rows.push((
                    DOMAIN_ORDER[di].to_string(),
                    pipeline.timings().repr_secs,
                    pipeline.timings().match_secs,
                    der.train_secs,
                    dm.train_secs,
                    ditto.train_secs,
                ));
            }
            rows
        }
    };
    println!(
        "{:<8} | {:>10} {:>10} | {:>9} {:>9} {:>9} | paper (repr/match/der/dm/ditto)",
        "Domain", "VAER repr", "VAER match", "DER", "DM", "DITTO"
    );
    for (name, repr, mtch, der, dm, ditto) in &rows {
        let di = DOMAIN_ORDER.iter().position(|n| n == name).unwrap_or(0);
        let p = TABLE_VI[di];
        println!(
            "{:<8} | {:>10.2} {:>10.2} | {:>9.2} {:>9.2} {:>9.2} | ({}/{}/{}/{}/{})",
            name, repr, mtch, der, dm, ditto, p.0, p.1, p.2, p.3, p.4
        );
    }
    // Shape checks the paper's narrative rests on.
    let match_cheapest = rows
        .iter()
        .filter(|r| r.2 < r.3 && r.2 < r.4 && r.2 < r.5)
        .count();
    println!(
        "\nShape check: VAER's matcher is the cheapest stage on {}/{} domains",
        match_cheapest,
        rows.len()
    );
    println!("(the paper's claim: matching is orders of magnitude cheaper than");
    println!("the end-to-end baselines, because feature learning is decoupled).");
}
