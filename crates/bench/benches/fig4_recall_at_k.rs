//! Figure 4: VAER^LSA recall@K as K increases (10 → 50), for the six
//! domains whose recall@10 was not already saturated in Table IV.

use vaer_bench::{banner, dataset, fit_repr_bundle, fmt_metric, scale_from_env, seed_from_env};
use vaer_core::evaluation::recall_at_k_vae;
use vaer_data::domains::Domain;
use vaer_embed::IrKind;

fn main() {
    banner("Figure 4 — VAER^LSA recall@K as K increases");
    let scale = scale_from_env();
    let seed = seed_from_env();
    // "the last six domains" of Table II.
    let domains = [
        Domain::Cosmetics,
        Domain::Software,
        Domain::Music,
        Domain::Beer,
        Domain::Stocks,
        Domain::Crm,
    ];
    let ks = [10usize, 20, 30, 40, 50];
    print!("{:<8}", "Domain");
    for k in ks {
        print!(" {:>7}", format!("K={k}"));
    }
    println!();
    for domain in domains {
        let ds = dataset(domain, scale, seed);
        let bundle = fit_repr_bundle(&ds, IrKind::Lsa, 64, seed);
        print!("{:<8}", ds.name);
        for k in ks {
            let r = recall_at_k_vae(&bundle.reprs_a, &bundle.reprs_b, &ds.duplicates, k);
            print!(" {:>7}", fmt_metric(r));
        }
        println!();
    }
    println!("\nShape check: recall must be non-decreasing in K and most domains");
    println!("should approach high recall by K=50, as in the paper's Fig. 4.");
}
