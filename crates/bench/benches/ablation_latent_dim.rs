//! Ablation: VAE latent dimensionality (paper Table III uses 100 at full
//! scale; our default is 32 — see DESIGN.md scaling notes).

use vaer_bench::{banner, dataset, fmt_metric, scale_from_env, seed_from_env};
use vaer_core::entity::IrTable;
use vaer_core::evaluation::recall_at_k_vae;
use vaer_core::latent::LatentTable;
use vaer_core::matcher::{MatcherConfig, PairExamples, SiameseMatcher};
use vaer_core::repr::{ReprConfig, ReprModel};
use vaer_data::domains::Domain;
use vaer_embed::{fit_ir_model, IrKind};

fn main() {
    banner("Ablation — VAE latent dimensionality");
    let scale = scale_from_env();
    let seed = seed_from_env();
    let dims = [8usize, 16, 32, 64];
    println!(
        "{:<8} | {:>24} | {:>24}",
        "Domain", "recall@10 (k=8/16/32/64)", "F1 (k=8/16/32/64)"
    );
    for domain in [Domain::Restaurants, Domain::Citations1, Domain::Beer] {
        let ds = dataset(domain, scale, seed);
        let arity = ds.table_a.schema.arity();
        let sentences = ds.all_sentences();
        let ir_model = fit_ir_model(IrKind::Lsa, &sentences, &ds.tables_raw(), 64, seed);
        let a_sentences: Vec<String> = ds.table_a.sentences().map(str::to_owned).collect();
        let b_sentences: Vec<String> = ds.table_b.sentences().map(str::to_owned).collect();
        let irs_a = IrTable::new(arity, ir_model.encode_batch(&a_sentences));
        let irs_b = IrTable::new(arity, ir_model.encode_batch(&b_sentences));
        let all = irs_a.irs.vconcat(&irs_b.irs);
        let mut recalls = Vec::new();
        let mut f1s = Vec::new();
        for latent in dims {
            let config = ReprConfig {
                ir_dim: 64,
                latent_dim: latent,
                seed,
                ..ReprConfig::default()
            };
            let (repr, _) = ReprModel::train(&all, &config).expect("VAE");
            let reprs_a = LatentTable::encode(&repr, &irs_a).entities();
            let reprs_b = LatentTable::encode(&repr, &irs_b).entities();
            recalls.push(fmt_metric(recall_at_k_vae(
                &reprs_a,
                &reprs_b,
                &ds.duplicates,
                10,
            )));
            let train = PairExamples::build(&irs_a, &irs_b, &ds.train_pairs);
            let test = PairExamples::build(&irs_a, &irs_b, &ds.test_pairs);
            let f1 = SiameseMatcher::train(
                &repr,
                &train,
                &MatcherConfig {
                    seed,
                    ..Default::default()
                },
            )
            .map(|m| m.evaluate(&test).f1)
            .unwrap_or(0.0);
            f1s.push(fmt_metric(f1));
        }
        println!(
            "{:<8} | {:>24} | {:>24}",
            ds.name,
            recalls.join("/"),
            f1s.join("/")
        );
    }
    println!("\nShape check: quality should saturate well below the paper's k=100 —");
    println!("supporting the scaled-down latent width used throughout this repo.");
}
