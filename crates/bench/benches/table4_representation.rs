//! Table IV: unsupervised representation learning P/R/F1 @K=10.
//!
//! For every domain and every IR family, compares top-K retrieval on the
//! raw IRs against retrieval on the VAE representations (μ search,
//! W₂² re-rank). Paper values are printed beside ours; the shape to
//! reproduce is "VAE encoding consistently improves (or matches) the raw
//! IRs, across all four IR types".

use vaer_bench::paper::{DOMAIN_ORDER, TABLE_IV};
use vaer_bench::{
    banner, dataset, domains_from_env, fit_repr_bundle, fmt_metric, scale_from_env, seed_from_env,
};
use vaer_core::evaluation::{topk_eval_irs, topk_eval_vae};
use vaer_data::domains::Domain;
use vaer_embed::IrKind;

fn main() {
    banner("Table IV — representation learning P/R/F1 @K=10 (IR vs VAER)");
    let scale = scale_from_env();
    let seed = seed_from_env();
    let k = 10;
    println!(
        "{:<8} {:<6} | {:>23} | {:>23} | {:>23}",
        "Domain", "IR", "P  (paper ir/vaer)", "R  (paper ir/vaer)", "F1 (paper ir/vaer)"
    );
    for domain in domains_from_env() {
        let ds = dataset(domain, scale, seed);
        let di = Domain::ALL
            .iter()
            .position(|&d| d == domain)
            .expect("known domain");
        for (ki, kind) in IrKind::ALL.into_iter().enumerate() {
            let bundle = fit_repr_bundle(&ds, kind, 64, seed ^ (ki as u64) << 8);
            let ir = topk_eval_irs(&bundle.irs_a, &bundle.irs_b, &ds.test_pairs, k);
            let vae = topk_eval_vae(&bundle.reprs_a, &bundle.reprs_b, &ds.test_pairs, k);
            let (pp_ir, pp_vae, pr_ir, pr_vae, pf_ir, pf_vae) = TABLE_IV[di][ki];
            println!(
                "{:<8} {:<6} | {:>4}/{:<4} ({:>4}/{:<4})   | {:>4}/{:<4} ({:>4}/{:<4})   | {:>4}/{:<4} ({:>4}/{:<4})",
                DOMAIN_ORDER[di],
                kind.name(),
                fmt_metric(ir.precision),
                fmt_metric(vae.precision),
                fmt_metric(pp_ir),
                fmt_metric(pp_vae),
                fmt_metric(ir.recall),
                fmt_metric(vae.recall),
                fmt_metric(pr_ir),
                fmt_metric(pr_vae),
                fmt_metric(ir.f1),
                fmt_metric(vae.f1),
                fmt_metric(pf_ir),
                fmt_metric(pf_vae),
            );
        }
    }
    println!("\nShape check: VAER columns should be >= the IR columns on most rows,");
    println!("as in the paper's Table IV.");
}
