//! Property-based tests of the benchmark generators: for any domain and
//! seed, the generated dataset must satisfy the structural invariants the
//! rest of the system assumes.

use proptest::prelude::*;
use vaer_data::domains::{Domain, DomainSpec, Scale};

fn domain_strategy() -> impl Strategy<Value = Domain> {
    prop_oneof![
        Just(Domain::Restaurants),
        Just(Domain::Citations1),
        Just(Domain::Citations2),
        Just(Domain::Cosmetics),
        Just(Domain::Software),
        Just(Domain::Music),
        Just(Domain::Beer),
        Just(Domain::Stocks),
        Just(Domain::Crm),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn generated_datasets_are_structurally_valid(
        domain in domain_strategy(),
        seed in 0u64..10_000,
    ) {
        let ds = DomainSpec::new(domain, Scale::Tiny).generate(seed);
        let meta = domain.meta();
        // Schema shape.
        prop_assert_eq!(ds.table_a.schema.arity(), meta.arity);
        prop_assert_eq!(ds.table_b.schema.arity(), meta.arity);
        prop_assert!(!ds.table_a.is_empty());
        prop_assert!(!ds.table_b.is_empty());
        // Splits reference valid rows and carry both classes.
        ds.train_pairs.validate(&ds.table_a, &ds.table_b).unwrap();
        ds.test_pairs.validate(&ds.table_a, &ds.table_b).unwrap();
        prop_assert!(ds.train_pairs.num_positive() > 0);
        prop_assert!(ds.train_pairs.num_negative() > 0);
        // Ground truth is deduplicated and in range.
        let mut dups = ds.duplicates.clone();
        dups.sort_unstable();
        dups.dedup();
        prop_assert_eq!(dups.len(), ds.duplicates.len());
        for &(a, b) in &ds.duplicates {
            prop_assert!(a < ds.table_a.len());
            prop_assert!(b < ds.table_b.len());
        }
        // Every labelled positive is in the ground truth; no labelled
        // negative is.
        let truth: std::collections::HashSet<(usize, usize)> =
            ds.duplicates.iter().copied().collect();
        for p in ds.train_pairs.pairs.iter().chain(ds.test_pairs.pairs.iter()) {
            prop_assert_eq!(
                truth.contains(&(p.left, p.right)),
                p.is_match,
                "label disagrees with ground truth for ({}, {})",
                p.left,
                p.right
            );
        }
    }

    #[test]
    fn generation_is_deterministic(domain in domain_strategy(), seed in 0u64..1000) {
        let a = DomainSpec::new(domain, Scale::Tiny).generate(seed);
        let b = DomainSpec::new(domain, Scale::Tiny).generate(seed);
        prop_assert_eq!(a.table_a, b.table_a);
        prop_assert_eq!(a.table_b, b.table_b);
        prop_assert_eq!(a.duplicates, b.duplicates);
        prop_assert_eq!(a.train_pairs, b.train_pairs);
        prop_assert_eq!(a.test_pairs, b.test_pairs);
    }

    #[test]
    fn train_and_test_do_not_share_pairs(
        domain in domain_strategy(),
        seed in 0u64..1000,
    ) {
        let ds = DomainSpec::new(domain, Scale::Tiny).generate(seed);
        let train: std::collections::HashSet<(usize, usize)> =
            ds.train_pairs.pairs.iter().map(|p| (p.left, p.right)).collect();
        for p in &ds.test_pairs.pairs {
            prop_assert!(
                !train.contains(&(p.left, p.right)),
                "pair ({}, {}) appears in both splits",
                p.left,
                p.right
            );
        }
    }
}
