//! Property-style tests of the benchmark generators: for any domain and
//! seed, the generated dataset must satisfy the structural invariants the
//! rest of the system assumes.
//!
//! Drives seeded random cases directly (the workspace has no external
//! property-testing dependency); every assertion names the failing
//! domain and seed so cases replay trivially.

use rand::{rngs::StdRng, RngExt, SeedableRng};
use vaer_data::domains::{Domain, DomainSpec, Scale};

const DOMAINS: [Domain; 9] = [
    Domain::Restaurants,
    Domain::Citations1,
    Domain::Citations2,
    Domain::Cosmetics,
    Domain::Software,
    Domain::Music,
    Domain::Beer,
    Domain::Stocks,
    Domain::Crm,
];

#[test]
fn generated_datasets_are_structurally_valid() {
    let mut rng = StdRng::seed_from_u64(0xDA7A);
    for _case in 0..40 {
        let domain = DOMAINS[rng.random_range(0..DOMAINS.len())];
        let seed = rng.random_range(0..10_000u64);
        let ds = DomainSpec::new(domain, Scale::Tiny).generate(seed);
        let meta = domain.meta();
        let ctx = format!("domain {domain:?} seed {seed}");
        // Schema shape.
        assert_eq!(ds.table_a.schema.arity(), meta.arity, "{ctx}");
        assert_eq!(ds.table_b.schema.arity(), meta.arity, "{ctx}");
        assert!(!ds.table_a.is_empty(), "{ctx}");
        assert!(!ds.table_b.is_empty(), "{ctx}");
        // Splits reference valid rows and carry both classes.
        ds.train_pairs.validate(&ds.table_a, &ds.table_b).unwrap();
        ds.test_pairs.validate(&ds.table_a, &ds.table_b).unwrap();
        assert!(ds.train_pairs.num_positive() > 0, "{ctx}");
        assert!(ds.train_pairs.num_negative() > 0, "{ctx}");
        // Ground truth is deduplicated and in range.
        let mut dups = ds.duplicates.clone();
        dups.sort_unstable();
        dups.dedup();
        assert_eq!(dups.len(), ds.duplicates.len(), "{ctx}");
        for &(a, b) in &ds.duplicates {
            assert!(a < ds.table_a.len(), "{ctx}");
            assert!(b < ds.table_b.len(), "{ctx}");
        }
        // Every labelled positive is in the ground truth; no labelled
        // negative is.
        let truth: std::collections::HashSet<(usize, usize)> =
            ds.duplicates.iter().copied().collect();
        for p in ds
            .train_pairs
            .pairs
            .iter()
            .chain(ds.test_pairs.pairs.iter())
        {
            assert_eq!(
                truth.contains(&(p.left, p.right)),
                p.is_match,
                "{ctx}: label disagrees with ground truth for ({}, {})",
                p.left,
                p.right
            );
        }
    }
}

#[test]
fn generation_is_deterministic() {
    let mut rng = StdRng::seed_from_u64(0xDE7E);
    for _case in 0..12 {
        let domain = DOMAINS[rng.random_range(0..DOMAINS.len())];
        let seed = rng.random_range(0..1000u64);
        let a = DomainSpec::new(domain, Scale::Tiny).generate(seed);
        let b = DomainSpec::new(domain, Scale::Tiny).generate(seed);
        assert_eq!(a.table_a, b.table_a, "domain {domain:?} seed {seed}");
        assert_eq!(a.table_b, b.table_b, "domain {domain:?} seed {seed}");
        assert_eq!(a.duplicates, b.duplicates, "domain {domain:?} seed {seed}");
        assert_eq!(
            a.train_pairs, b.train_pairs,
            "domain {domain:?} seed {seed}"
        );
        assert_eq!(a.test_pairs, b.test_pairs, "domain {domain:?} seed {seed}");
    }
}

#[test]
fn train_and_test_do_not_share_pairs() {
    let mut rng = StdRng::seed_from_u64(0x5EED);
    for _case in 0..20 {
        let domain = DOMAINS[rng.random_range(0..DOMAINS.len())];
        let seed = rng.random_range(0..1000u64);
        let ds = DomainSpec::new(domain, Scale::Tiny).generate(seed);
        let train: std::collections::HashSet<(usize, usize)> = ds
            .train_pairs
            .pairs
            .iter()
            .map(|p| (p.left, p.right))
            .collect();
        for p in &ds.test_pairs.pairs {
            assert!(
                !train.contains(&(p.left, p.right)),
                "domain {domain:?} seed {seed}: pair ({}, {}) appears in both splits",
                p.left,
                p.right
            );
        }
    }
}
