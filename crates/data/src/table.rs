//! The relational model: schemas, tuples, tables.

/// Attribute names of a table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    /// Table name (for display).
    pub name: String,
    /// Ordered attribute names.
    pub attributes: Vec<String>,
}

impl Schema {
    /// Builds a schema.
    pub fn new(name: impl Into<String>, attributes: &[&str]) -> Self {
        Self {
            name: name.into(),
            attributes: attributes.iter().map(|&s| s.into()).collect(),
        }
    }

    /// Number of attributes (the paper's "arity").
    pub fn arity(&self) -> usize {
        self.attributes.len()
    }
}

/// A table: a schema plus rows of string values.
///
/// Missing values are empty strings, matching how the DeepMatcher benchmark
/// CSVs represent them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    /// The schema.
    pub schema: Schema,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// An empty table with the given schema.
    pub fn new(schema: Schema) -> Self {
        Self {
            schema,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the row's width differs from the schema arity.
    pub fn push(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.schema.arity(),
            "row has {} values, schema '{}' expects {}",
            row.len(),
            self.schema.name,
            self.schema.arity()
        );
        self.rows.push(row);
    }

    /// Number of rows (the paper's "cardinality").
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Row accessor.
    pub fn row(&self, i: usize) -> &[String] {
        &self.rows[i]
    }

    /// All rows.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// One attribute value.
    pub fn value(&self, row: usize, attr: usize) -> &str {
        &self.rows[row][attr]
    }

    /// Iterator over every attribute value as a "sentence" (paper §III-B),
    /// row-major: row 0's attributes, then row 1's, …
    pub fn sentences(&self) -> impl Iterator<Item = &str> {
        self.rows.iter().flat_map(|r| r.iter().map(String::as_str))
    }

    /// Truncates or pads (with empty-string columns) every row to `arity`
    /// attributes — the transfer-learning arity adapter of §VI-D.
    pub fn with_arity(&self, arity: usize) -> Table {
        let mut attributes: Vec<String> =
            self.schema.attributes.iter().take(arity).cloned().collect();
        while attributes.len() < arity {
            attributes.push(format!("pad_{}", attributes.len()));
        }
        let mut out = Table::new(Schema {
            name: self.schema.name.clone(),
            attributes,
        });
        for row in &self.rows {
            let mut new_row: Vec<String> = row.iter().take(arity).cloned().collect();
            while new_row.len() < arity {
                new_row.push(String::new());
            }
            out.push(new_row);
        }
        out
    }

    /// Fraction of cells that are empty (missing) — a quick noisiness probe.
    pub fn missing_rate(&self) -> f32 {
        let total: usize = self.rows.len() * self.schema.arity();
        if total == 0 {
            return 0.0;
        }
        let missing = self.rows.iter().flatten().filter(|v| v.is_empty()).count();
        missing as f32 / total as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> Table {
        let mut t = Table::new(Schema::new("songs", &["title", "artist"]));
        t.push(vec!["yellow".into(), "coldplay".into()]);
        t.push(vec!["creep".into(), String::new()]);
        t
    }

    #[test]
    fn push_and_access() {
        let t = demo();
        assert_eq!(t.len(), 2);
        assert_eq!(t.schema.arity(), 2);
        assert_eq!(t.value(0, 1), "coldplay");
        assert_eq!(t.row(1)[0], "creep");
    }

    #[test]
    #[should_panic]
    fn wrong_width_panics() {
        let mut t = demo();
        t.push(vec!["only-one".into()]);
    }

    #[test]
    fn sentences_row_major() {
        let t = demo();
        let s: Vec<&str> = t.sentences().collect();
        assert_eq!(s, vec!["yellow", "coldplay", "creep", ""]);
    }

    #[test]
    fn with_arity_truncates_and_pads() {
        let t = demo();
        let narrow = t.with_arity(1);
        assert_eq!(narrow.schema.arity(), 1);
        assert_eq!(narrow.row(0), &["yellow".to_string()]);
        let wide = t.with_arity(4);
        assert_eq!(wide.schema.arity(), 4);
        assert_eq!(wide.row(0)[3], "");
        assert_eq!(wide.schema.attributes[3], "pad_3");
    }

    #[test]
    fn missing_rate() {
        let t = demo();
        assert!((t.missing_rate() - 0.25).abs() < 1e-6);
        let empty = Table::new(Schema::new("e", &["a"]));
        assert_eq!(empty.missing_rate(), 0.0);
    }
}
