//! Data model and benchmark datasets for VAER.
//!
//! The paper evaluates on nine two-table ER domains (Table II): seven from
//! the public DeepMatcher benchmark plus two private Peak AI datasets.
//! None of those files are available offline, so this crate generates
//! *synthetic equivalents with the same shape* — identical arity, the same
//! clean (†) / noisy (‡) split, scaled cardinalities and train/test pair
//! sizes, and a perturbation model (typos, abbreviations, token drops,
//! missing values, numeric jitter, unstructured descriptions) that makes
//! duplicates surface-variant renderings of the same underlying entity.
//! See DESIGN.md ("Substitutions") for the full rationale.
//!
//! Key types:
//! - [`Table`] / [`Schema`] — the relational model, with CSV round-trips,
//! - [`LabeledPair`] / [`PairSet`] — duplicate/non-duplicate examples,
//! - [`Oracle`] — ground-truth labeller with a query budget counter (for
//!   measuring active-learning label cost),
//! - [`domains::DomainSpec`] — the nine benchmark generators,
//! - [`loader`] — DeepMatcher-layout CSV loading for real data,
//! - [`Dataset`] — everything one experiment needs, bundled.

pub mod csv;
mod dataset;
pub mod domains;
pub mod loader;
mod oracle;
mod pairs;
mod perturb;
mod pools;
mod table;

pub use dataset::Dataset;
pub use oracle::Oracle;
pub use pairs::{LabeledPair, PairSet};
pub use perturb::{NoiseProfile, Perturber};
pub use table::{Schema, Table};

/// Errors from data loading/parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataError {
    /// CSV row had a different number of fields than the header.
    RaggedRow {
        /// 1-based line number.
        line: usize,
        /// Fields found.
        found: usize,
        /// Fields expected.
        expected: usize,
    },
    /// Input was empty where a header was required.
    MissingHeader,
    /// A labelled pair referenced a row index outside its table.
    PairOutOfBounds {
        /// Which side of the pair.
        side: &'static str,
        /// The offending index.
        index: usize,
        /// The table length.
        len: usize,
    },
}

impl std::fmt::Display for DataError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DataError::RaggedRow {
                line,
                found,
                expected,
            } => {
                write!(f, "CSV line {line}: {found} fields, expected {expected}")
            }
            DataError::MissingHeader => write!(f, "CSV input has no header row"),
            DataError::PairOutOfBounds { side, index, len } => {
                write!(
                    f,
                    "pair {side} index {index} out of bounds for table of {len} rows"
                )
            }
        }
    }
}

impl std::error::Error for DataError {}
