//! Minimal RFC-4180-style CSV reading and writing (quoted fields,
//! embedded commas/quotes/newlines) — enough to round-trip benchmark
//! tables to disk without external dependencies.

use crate::table::{Schema, Table};
use crate::DataError;

/// Serialises a table to CSV with a header row.
pub fn to_csv(table: &Table) -> String {
    let mut out = String::new();
    write_row(&mut out, table.schema.attributes.iter().map(String::as_str));
    for row in table.rows() {
        write_row(&mut out, row.iter().map(String::as_str));
    }
    out
}

fn write_row<'a>(out: &mut String, fields: impl Iterator<Item = &'a str>) {
    let mut first = true;
    for f in fields {
        if !first {
            out.push(',');
        }
        first = false;
        if f.contains(',') || f.contains('"') || f.contains('\n') {
            out.push('"');
            for c in f.chars() {
                if c == '"' {
                    out.push('"');
                }
                out.push(c);
            }
            out.push('"');
        } else {
            out.push_str(f);
        }
    }
    out.push('\n');
}

/// Parses CSV text (first row is the header) into a [`Table`].
///
/// # Errors
/// [`DataError::MissingHeader`] on empty input,
/// [`DataError::RaggedRow`] when a row's width differs from the header.
pub fn from_csv(name: &str, text: &str) -> Result<Table, DataError> {
    let mut rows = parse_rows(text);
    if rows.is_empty() {
        return Err(DataError::MissingHeader);
    }
    let header = rows.remove(0);
    let arity = header.len();
    let schema = Schema {
        name: name.to_string(),
        attributes: header,
    };
    let mut table = Table::new(schema);
    for (i, row) in rows.into_iter().enumerate() {
        if row.len() != arity {
            return Err(DataError::RaggedRow {
                line: i + 2,
                found: row.len(),
                expected: arity,
            });
        }
        table.push(row);
    }
    Ok(table)
}

/// Low-level CSV row parser handling quotes and escaped quotes.
fn parse_rows(text: &str) -> Vec<Vec<String>> {
    let mut rows = Vec::new();
    let mut row: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut in_quotes = false;
    let mut chars = text.chars().peekable();
    let mut any = false;
    while let Some(c) = chars.next() {
        any = true;
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                _ => field.push(c),
            }
        } else {
            match c {
                '"' => in_quotes = true,
                ',' => {
                    row.push(std::mem::take(&mut field));
                }
                '\r' => {}
                '\n' => {
                    row.push(std::mem::take(&mut field));
                    rows.push(std::mem::take(&mut row));
                }
                _ => field.push(c),
            }
        }
    }
    if any && (!field.is_empty() || !row.is_empty()) {
        row.push(field);
        rows.push(row);
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> Table {
        let mut t = Table::new(Schema::new("demo", &["name", "notes"]));
        t.push(vec!["plain".into(), "simple".into()]);
        t.push(vec!["has,comma".into(), "has \"quotes\"".into()]);
        t.push(vec!["multi\nline".into(), String::new()]);
        t
    }

    #[test]
    fn round_trip() {
        let t = demo();
        let csv = to_csv(&t);
        let back = from_csv("demo", &csv).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn empty_input_errors() {
        assert_eq!(from_csv("x", ""), Err(DataError::MissingHeader));
    }

    #[test]
    fn ragged_row_errors() {
        let err = from_csv("x", "a,b\n1,2\n3\n").unwrap_err();
        assert!(matches!(
            err,
            DataError::RaggedRow {
                line: 3,
                found: 1,
                expected: 2
            }
        ));
    }

    #[test]
    fn header_only_is_empty_table() {
        let t = from_csv("x", "a,b\n").unwrap();
        assert_eq!(t.len(), 0);
        assert_eq!(t.schema.arity(), 2);
    }

    #[test]
    fn missing_trailing_newline_ok() {
        let t = from_csv("x", "a,b\n1,2").unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.row(0), &["1".to_string(), "2".to_string()]);
    }

    #[test]
    fn quoted_empty_fields() {
        let t = from_csv("x", "a,b\n\"\",\"y\"\n").unwrap();
        assert_eq!(t.row(0), &[String::new(), "y".to_string()]);
    }
}
