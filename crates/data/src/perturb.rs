//! The perturbation model: how a duplicate differs from its source tuple.
//!
//! Clean (†) domains get light noise (occasional typo or case change);
//! noisy (‡) domains add missing values, token drops, abbreviations and
//! word-order shuffles — the failure modes the paper attributes to its
//! hard datasets (Software's missing values, Cosmetics' near-identical
//! variants, etc.).

use rand::{Rng, RngExt};

/// Per-attribute noise intensities, all probabilities in `[0, 1]`.
#[derive(Debug, Clone, Copy)]
pub struct NoiseProfile {
    /// Probability of one character-level typo per value.
    pub typo: f32,
    /// Probability the value is blanked entirely (missing).
    pub missing: f32,
    /// Probability one token is dropped.
    pub token_drop: f32,
    /// Probability the first token is abbreviated to its initial.
    pub abbreviate: f32,
    /// Probability two adjacent tokens swap places.
    pub token_swap: f32,
    /// Relative jitter applied to numeric values (e.g. `0.02` = ±2%).
    pub numeric_jitter: f32,
}

impl NoiseProfile {
    /// Light noise for the paper's clean (†) domains.
    pub fn clean() -> Self {
        Self {
            typo: 0.06,
            missing: 0.01,
            token_drop: 0.03,
            abbreviate: 0.03,
            token_swap: 0.02,
            numeric_jitter: 0.0,
        }
    }

    /// Heavy noise for the paper's noisy (‡) domains.
    pub fn noisy() -> Self {
        Self {
            typo: 0.2,
            missing: 0.14,
            token_drop: 0.18,
            abbreviate: 0.1,
            token_swap: 0.1,
            numeric_jitter: 0.03,
        }
    }

    /// Scales every probability by `factor` (capped to sane maxima), for
    /// per-duplicate difficulty mixtures: some duplicates are near-exact
    /// copies, others are heavily mangled — matching the heterogeneity of
    /// real ER benchmarks that drives the value of *diverse* labels
    /// (paper §V-B3).
    pub fn scaled(&self, factor: f32) -> Self {
        Self {
            typo: (self.typo * factor).min(0.6),
            missing: (self.missing * factor).min(0.45),
            token_drop: (self.token_drop * factor).min(0.5),
            abbreviate: (self.abbreviate * factor).min(0.5),
            token_swap: (self.token_swap * factor).min(0.5),
            numeric_jitter: (self.numeric_jitter * factor).min(0.2),
        }
    }

    /// No noise at all (duplicates are exact copies).
    pub fn none() -> Self {
        Self {
            typo: 0.0,
            missing: 0.0,
            token_drop: 0.0,
            abbreviate: 0.0,
            token_swap: 0.0,
            numeric_jitter: 0.0,
        }
    }
}

/// Applies a [`NoiseProfile`] to attribute values.
#[derive(Debug, Clone)]
pub struct Perturber {
    profile: NoiseProfile,
}

impl Perturber {
    /// Builds a perturber with the given profile.
    pub fn new(profile: NoiseProfile) -> Self {
        Self { profile }
    }

    /// The active profile.
    pub fn profile(&self) -> &NoiseProfile {
        &self.profile
    }

    /// Perturbs one attribute value.
    pub fn value<R: Rng>(&self, value: &str, rng: &mut R) -> String {
        if value.is_empty() {
            return String::new();
        }
        let p = &self.profile;
        if rng.random_range(0.0f32..1.0) < p.missing {
            return String::new();
        }
        // Numeric values only get jitter.
        if let Ok(num) = value.parse::<f64>() {
            if p.numeric_jitter > 0.0 && rng.random_range(0.0f32..1.0) < 0.5 {
                let jitter = 1.0 + rng.random_range(-p.numeric_jitter..p.numeric_jitter) as f64;
                let out = num * jitter;
                return if value.contains('.') {
                    format!("{out:.2}")
                } else {
                    format!("{}", out.round() as i64)
                };
            }
            return value.to_string();
        }
        let mut tokens: Vec<String> = value.split_whitespace().map(str::to_owned).collect();
        if tokens.len() > 1 && rng.random_range(0.0f32..1.0) < p.token_drop {
            let i = rng.random_range(0..tokens.len());
            tokens.remove(i);
        }
        if !tokens.is_empty() && rng.random_range(0.0f32..1.0) < p.abbreviate {
            let first = &tokens[0];
            if first.chars().count() > 1 {
                let initial: String = first.chars().take(1).collect();
                tokens[0] = format!("{initial}.");
            }
        }
        if tokens.len() > 1 && rng.random_range(0.0f32..1.0) < p.token_swap {
            let i = rng.random_range(0..tokens.len() - 1);
            tokens.swap(i, i + 1);
        }
        if rng.random_range(0.0f32..1.0) < p.typo {
            let i = rng
                .random_range(0..tokens.len().max(1))
                .min(tokens.len().saturating_sub(1));
            if !tokens.is_empty() {
                tokens[i] = typo(&tokens[i], rng);
            }
        }
        tokens.join(" ")
    }

    /// Perturbs a whole row.
    pub fn row<R: Rng>(&self, row: &[String], rng: &mut R) -> Vec<String> {
        row.iter().map(|v| self.value(v, rng)).collect()
    }
}

/// One character-level typo: delete, duplicate, swap, or replace.
fn typo<R: Rng>(token: &str, rng: &mut R) -> String {
    let chars: Vec<char> = token.chars().collect();
    if chars.len() < 2 {
        return token.to_string();
    }
    let i = rng.random_range(0..chars.len());
    let mut out = chars.clone();
    match rng.random_range(0..4u8) {
        0 => {
            out.remove(i);
        }
        1 => {
            out.insert(i, chars[i]);
        }
        2 => {
            if i + 1 < out.len() {
                out.swap(i, i + 1);
            } else {
                out.swap(i - 1, i);
            }
        }
        _ => {
            let replacement = (b'a' + rng.random_range(0..26u8)) as char;
            out[i] = replacement;
        }
    }
    out.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn none_profile_is_identity() {
        let p = Perturber::new(NoiseProfile::none());
        let mut r = rng(0);
        for v in ["hello world", "12.5", ""] {
            assert_eq!(p.value(v, &mut r), v);
        }
    }

    #[test]
    fn noisy_profile_changes_values_sometimes() {
        let p = Perturber::new(NoiseProfile::noisy());
        let mut r = rng(1);
        let original = "the grand budapest hotel restaurant";
        let changed = (0..100)
            .filter(|_| p.value(original, &mut r) != original)
            .count();
        assert!(changed > 20, "only {changed}/100 perturbed");
        // But most perturbed values still share tokens with the source.
        let mut shared_any = 0;
        for _ in 0..100 {
            let v = p.value(original, &mut r);
            if v.split_whitespace().any(|t| original.contains(t)) {
                shared_any += 1;
            }
        }
        assert!(shared_any > 70, "only {shared_any}/100 retain overlap");
    }

    #[test]
    fn missing_blanks_values() {
        let profile = NoiseProfile {
            missing: 1.0,
            ..NoiseProfile::none()
        };
        let p = Perturber::new(profile);
        assert_eq!(p.value("anything", &mut rng(2)), "");
    }

    #[test]
    fn numeric_jitter_stays_numeric_and_close() {
        let profile = NoiseProfile {
            numeric_jitter: 0.05,
            ..NoiseProfile::none()
        };
        let p = Perturber::new(profile);
        let mut r = rng(3);
        for _ in 0..50 {
            let v = p.value("100", &mut r);
            let n: f64 = v.parse().expect("still numeric");
            assert!((n - 100.0).abs() <= 6.0, "jittered to {n}");
        }
    }

    #[test]
    fn abbreviation_shortens_first_token() {
        let profile = NoiseProfile {
            abbreviate: 1.0,
            ..NoiseProfile::none()
        };
        let p = Perturber::new(profile);
        let v = p.value("jonathan smith", &mut rng(4));
        assert!(v.starts_with("j."), "got {v}");
    }

    #[test]
    fn typo_changes_one_token_only_slightly() {
        let mut r = rng(5);
        for _ in 0..50 {
            let t = typo("restaurant", &mut r);
            // Length can shrink/grow by at most one character.
            assert!((t.chars().count() as i64 - 10).abs() <= 1, "{t}");
        }
        assert_eq!(typo("a", &mut r), "a"); // too short to perturb
    }

    #[test]
    fn row_perturbs_each_value() {
        let p = Perturber::new(NoiseProfile::none());
        let row = vec!["a".to_string(), "b".to_string()];
        assert_eq!(p.row(&row, &mut rng(6)), row);
    }
}
