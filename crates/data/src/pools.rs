//! Deterministic word pools and compositional generators used by the nine
//! benchmark-domain generators.
//!
//! Pools are intentionally small but compositional: entity names are built
//! by combining pool words with syllable-generated proper nouns, so the
//! generators can mint tens of thousands of distinct entities while
//! keeping realistic token-overlap structure (hard negatives share brand
//! words, cities, genres, …).

use rand::{Rng, RngExt};

pub const FIRST_NAMES: &[&str] = &[
    "james",
    "mary",
    "robert",
    "patricia",
    "john",
    "jennifer",
    "michael",
    "linda",
    "david",
    "elizabeth",
    "william",
    "barbara",
    "richard",
    "susan",
    "joseph",
    "jessica",
    "thomas",
    "sarah",
    "charles",
    "karen",
    "christopher",
    "lisa",
    "daniel",
    "nancy",
    "matthew",
    "betty",
    "anthony",
    "margaret",
    "mark",
    "sandra",
    "donald",
    "ashley",
    "steven",
    "kimberly",
    "paul",
    "emily",
    "andrew",
    "donna",
    "joshua",
    "michelle",
];

pub const LAST_NAMES: &[&str] = &[
    "smith",
    "johnson",
    "williams",
    "brown",
    "jones",
    "garcia",
    "miller",
    "davis",
    "rodriguez",
    "martinez",
    "hernandez",
    "lopez",
    "gonzalez",
    "wilson",
    "anderson",
    "thomas",
    "taylor",
    "moore",
    "jackson",
    "martin",
    "lee",
    "perez",
    "thompson",
    "white",
    "harris",
    "sanchez",
    "clark",
    "ramirez",
    "lewis",
    "robinson",
    "walker",
    "young",
    "allen",
    "king",
    "wright",
    "scott",
    "torres",
    "nguyen",
    "hill",
    "flores",
];

pub const CITIES: &[&str] = &[
    "new york",
    "los angeles",
    "chicago",
    "houston",
    "phoenix",
    "philadelphia",
    "san antonio",
    "san diego",
    "dallas",
    "austin",
    "seattle",
    "denver",
    "boston",
    "portland",
    "atlanta",
    "miami",
    "oakland",
    "minneapolis",
    "tulsa",
    "arlington",
    "tampa",
    "orlando",
    "pittsburgh",
    "cincinnati",
    "anchorage",
    "toledo",
    "lincoln",
    "madison",
    "reno",
    "buffalo",
];

pub const STREETS: &[&str] = &[
    "main st",
    "oak ave",
    "maple dr",
    "cedar ln",
    "park blvd",
    "washington st",
    "lake view rd",
    "sunset blvd",
    "river rd",
    "hill st",
    "church st",
    "broadway",
    "elm st",
    "highland ave",
    "market st",
    "union sq",
    "5th ave",
    "canal st",
    "bay dr",
    "grove st",
];

pub const CUISINES: &[&str] = &[
    "italian",
    "french",
    "japanese",
    "chinese",
    "mexican",
    "thai",
    "indian",
    "greek",
    "american",
    "spanish",
    "korean",
    "vietnamese",
    "lebanese",
    "turkish",
    "ethiopian",
];

pub const RESTAURANT_WORDS: &[&str] = &[
    "grill",
    "bistro",
    "kitchen",
    "cafe",
    "trattoria",
    "brasserie",
    "tavern",
    "diner",
    "house",
    "garden",
    "corner",
    "table",
    "oven",
    "fork",
    "spoon",
    "plate",
];

pub const PRICE_BANDS: &[&str] = &["$", "$$", "$$$", "$$$$"];

pub const VENUES: &[&str] = &[
    "sigmod",
    "vldb",
    "icde",
    "kdd",
    "www",
    "cikm",
    "edbt",
    "acl",
    "emnlp",
    "nips",
    "icml",
    "aaai",
    "ijcai",
    "sigir",
    "wsdm",
    "tkde journal",
    "vldb journal",
    "jmlr",
];

pub const RESEARCH_WORDS: &[&str] = &[
    "learning",
    "entity",
    "resolution",
    "database",
    "query",
    "optimization",
    "neural",
    "network",
    "distributed",
    "streaming",
    "graph",
    "embedding",
    "index",
    "transaction",
    "knowledge",
    "semantic",
    "deep",
    "probabilistic",
    "scalable",
    "adaptive",
    "efficient",
    "robust",
    "incremental",
    "approximate",
    "parallel",
    "federated",
    "relational",
];

pub const RESEARCH_NOUNS: &[&str] = &[
    "systems",
    "models",
    "methods",
    "algorithms",
    "frameworks",
    "architectures",
    "approaches",
    "techniques",
    "analysis",
    "evaluation",
    "benchmarks",
    "applications",
];

pub const COSMETIC_BRANDS: &[&str] = &[
    "lumessa",
    "veloura",
    "dermaglow",
    "purebloom",
    "satinelle",
    "aurorae",
    "claribel",
    "rosette",
    "velvetine",
    "mirabelle",
    "opaline",
    "seraphic",
];

pub const COSMETIC_PRODUCTS: &[&str] = &[
    "matte lipstick",
    "hydrating serum",
    "night cream",
    "foundation",
    "eye shadow palette",
    "mascara",
    "facial cleanser",
    "toner",
    "blush",
    "concealer",
    "lip gloss",
    "face mask",
];

pub const COLORS: &[&str] = &[
    "ruby red",
    "coral",
    "nude beige",
    "rose gold",
    "ivory",
    "charcoal",
    "plum",
    "peach",
    "sand",
    "copper",
    "mauve",
    "berry",
];

pub const SOFTWARE_WORDS: &[&str] = &[
    "studio",
    "suite",
    "pro",
    "manager",
    "editor",
    "toolkit",
    "server",
    "desktop",
    "cloud",
    "analytics",
    "security",
    "backup",
    "office",
    "photo",
    "video",
    "audio",
    "antivirus",
];

pub const SOFTWARE_BRANDS: &[&str] = &[
    "nexora",
    "bytecraft",
    "softlume",
    "coreline",
    "datavant",
    "appforge",
    "logicware",
    "stackline",
    "gridsoft",
    "cypherix",
];

pub const GENRES: &[&str] = &[
    "rock",
    "pop",
    "jazz",
    "classical",
    "hip hop",
    "electronic",
    "country",
    "blues",
    "folk",
    "metal",
    "reggae",
    "soul",
    "indie",
    "ambient",
];

pub const MUSIC_WORDS: &[&str] = &[
    "love", "night", "heart", "dream", "fire", "rain", "summer", "moon", "road", "river", "light",
    "shadow", "dance", "home", "blue", "golden", "silver", "broken", "wild", "lost",
];

pub const RECORD_LABELS: &[&str] = &[
    "parlophone",
    "capitol",
    "columbia",
    "atlantic",
    "interscope",
    "island",
    "virgin",
    "domino",
    "subpop",
    "merge",
    "matador",
    "rough trade",
];

pub const BEER_STYLES: &[&str] = &[
    "ipa",
    "double ipa",
    "pale ale",
    "stout",
    "imperial stout",
    "porter",
    "pilsner",
    "lager",
    "wheat ale",
    "saison",
    "amber ale",
    "sour ale",
    "brown ale",
    "barleywine",
];

pub const BREWERY_WORDS: &[&str] = &[
    "brewing",
    "brewery",
    "brewhouse",
    "beer co",
    "ales",
    "craftworks",
    "fermentory",
];

pub const SECTORS: &[&str] = &[
    "technology",
    "healthcare",
    "financials",
    "energy",
    "utilities",
    "materials",
    "industrials",
    "consumer staples",
    "consumer discretionary",
    "real estate",
    "communication services",
];

pub const EXCHANGES: &[&str] = &["nyse", "nasdaq", "amex", "lse", "tsx"];

pub const COMPANY_SUFFIXES: &[&str] = &[
    "inc",
    "corp",
    "ltd",
    "llc",
    "group",
    "holdings",
    "technologies",
    "industries",
];

pub const JOB_TITLES: &[&str] = &[
    "account manager",
    "sales director",
    "software engineer",
    "data analyst",
    "marketing lead",
    "operations manager",
    "product manager",
    "hr specialist",
    "finance controller",
    "support engineer",
    "consultant",
    "vp engineering",
];

pub const DEPARTMENTS: &[&str] = &[
    "sales",
    "engineering",
    "marketing",
    "operations",
    "finance",
    "hr",
    "support",
    "legal",
    "product",
    "it",
];

pub const STATES: &[&str] = &[
    "ca", "ny", "tx", "fl", "il", "pa", "oh", "ga", "nc", "mi", "wa", "ma", "co", "or", "az",
];

pub const DESCRIPTION_FILLER: &[&str] = &[
    "premium",
    "quality",
    "new",
    "original",
    "best",
    "professional",
    "advanced",
    "classic",
    "limited",
    "edition",
    "official",
    "genuine",
    "improved",
    "lightweight",
    "portable",
    "durable",
    "easy",
    "to",
    "use",
    "for",
    "with",
    "and",
    "the",
    "a",
    "includes",
    "free",
    "shipping",
    "warranty",
    "pack",
    "set",
    "series",
];

const SYLLABLES: &[&str] = &[
    "ba", "be", "bo", "ca", "ce", "co", "da", "de", "do", "fa", "fe", "ga", "go", "ha", "he", "ka",
    "ke", "ko", "la", "le", "lo", "ma", "me", "mo", "na", "ne", "no", "pa", "pe", "po", "ra", "re",
    "ro", "sa", "se", "so", "ta", "te", "to", "va", "ve", "vo", "za", "zo", "mi", "ni", "ri", "si",
    "ti", "vi",
];

/// Picks one element of a non-empty pool.
///
/// # Panics
/// Panics on an empty pool.
pub fn pick<'a, R: Rng>(pool: &'a [&'a str], rng: &mut R) -> &'a str {
    assert!(!pool.is_empty(), "cannot pick from an empty pool");
    pool[rng.random_range(0..pool.len())]
}

/// Mints a pronounceable proper noun from 2–4 syllables.
pub fn proper_noun<R: Rng>(rng: &mut R) -> String {
    let n = rng.random_range(2..=4usize);
    let mut s = String::with_capacity(n * 2);
    for _ in 0..n {
        s.push_str(SYLLABLES[rng.random_range(0..SYLLABLES.len())]);
    }
    s
}

/// A phone number in `(AAA) BBB-CCCC` format.
pub fn phone<R: Rng>(rng: &mut R) -> String {
    format!(
        "({:03}) {:03}-{:04}",
        rng.random_range(200..999u32),
        rng.random_range(200..999u32),
        rng.random_range(0..10_000u32)
    )
}

/// A street address like `123 oak ave`.
pub fn address<R: Rng>(rng: &mut R) -> String {
    format!("{} {}", rng.random_range(1..9999u32), pick(STREETS, rng))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(1)
    }

    #[test]
    fn pick_stays_in_pool() {
        let mut r = rng();
        for _ in 0..100 {
            let c = pick(CITIES, &mut r);
            assert!(CITIES.contains(&c));
        }
    }

    #[test]
    fn proper_nouns_vary() {
        let mut r = rng();
        let names: std::collections::HashSet<String> =
            (0..200).map(|_| proper_noun(&mut r)).collect();
        assert!(names.len() > 150, "only {} distinct names", names.len());
        assert!(names.iter().all(|n| (4..=8).contains(&n.len())));
    }

    #[test]
    fn phone_format() {
        let mut r = rng();
        let p = phone(&mut r);
        assert_eq!(p.len(), 14);
        assert!(p.starts_with('('));
    }

    #[test]
    fn address_has_number_and_street() {
        let mut r = rng();
        let a = address(&mut r);
        assert!(a.split_whitespace().next().unwrap().parse::<u32>().is_ok());
    }

    #[test]
    #[should_panic]
    fn empty_pool_panics() {
        pick(&[], &mut rng());
    }
}
