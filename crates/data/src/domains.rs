//! The nine benchmark domains of the paper's Table II, as synthetic
//! generators with matching shape (arity, clean/noisy class, scaled
//! cardinalities and train/test sizes).

use crate::dataset::Dataset;
use crate::pairs::{LabeledPair, PairSet};
use crate::perturb::{NoiseProfile, Perturber};
use crate::pools;
use crate::table::{Schema, Table};
use rand::{Rng, RngExt, SeedableRng};
use std::collections::BTreeMap;

/// One of the paper's nine evaluation domains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Domain {
    /// Fodors–Zagat-style restaurant listings (clean, arity 6).
    Restaurants,
    /// DBLP–ACM-style citations (clean, arity 4).
    Citations1,
    /// DBLP–Scholar-style citations, much larger right table (clean, arity 4).
    Citations2,
    /// Cosmetics products with near-identical colour variants (noisy, arity 3).
    Cosmetics,
    /// Software products: name, numeric price, free-text description (noisy, arity 3).
    Software,
    /// iTunes–Amazon-style songs (noisy, arity 8).
    Music,
    /// BeerAdvocate–RateBeer-style beers (noisy, arity 4).
    Beer,
    /// Company/stock listings (noisy, arity 8).
    Stocks,
    /// Person-contact CRM records (clean, arity 12; stands in for the
    /// private Peak AI dataset).
    Crm,
}

/// Static shape of one domain, mirroring a Table II row.
#[derive(Debug, Clone)]
pub struct DomainMeta {
    /// Display name matching the paper's table rows.
    pub name: &'static str,
    /// Attribute count.
    pub arity: usize,
    /// Paper's left-table cardinality.
    pub card_a: usize,
    /// Paper's right-table cardinality.
    pub card_b: usize,
    /// Paper's training-pair count.
    pub train: usize,
    /// Paper's test-pair count.
    pub test: usize,
    /// `true` for † (clean) domains.
    pub clean: bool,
    /// Attribute names.
    pub attributes: &'static [&'static str],
}

impl Domain {
    /// All nine domains in Table II order.
    pub const ALL: [Domain; 9] = [
        Domain::Restaurants,
        Domain::Citations1,
        Domain::Citations2,
        Domain::Cosmetics,
        Domain::Software,
        Domain::Music,
        Domain::Beer,
        Domain::Stocks,
        Domain::Crm,
    ];

    /// The Table II row for this domain.
    pub fn meta(self) -> DomainMeta {
        match self {
            Domain::Restaurants => DomainMeta {
                name: "Rest.",
                arity: 6,
                card_a: 533,
                card_b: 331,
                train: 567,
                test: 189,
                clean: true,
                attributes: &["name", "address", "city", "phone", "cuisine", "price"],
            },
            Domain::Citations1 => DomainMeta {
                name: "Cit. 1",
                arity: 4,
                card_a: 2616,
                card_b: 2294,
                train: 7417,
                test: 2473,
                clean: true,
                attributes: &["title", "authors", "venue", "year"],
            },
            Domain::Citations2 => DomainMeta {
                name: "Cit. 2",
                arity: 4,
                card_a: 2612,
                card_b: 64263,
                train: 17223,
                test: 5742,
                clean: true,
                attributes: &["title", "authors", "venue", "year"],
            },
            Domain::Cosmetics => DomainMeta {
                name: "Cosm.",
                arity: 3,
                card_a: 11026,
                card_b: 6443,
                train: 327,
                test: 81,
                clean: false,
                attributes: &["name", "brand", "description"],
            },
            Domain::Software => DomainMeta {
                name: "Soft.",
                arity: 3,
                card_a: 1363,
                card_b: 3226,
                train: 6874,
                test: 2293,
                clean: false,
                attributes: &["name", "price", "description"],
            },
            Domain::Music => DomainMeta {
                name: "Music",
                arity: 8,
                card_a: 6907,
                card_b: 55923,
                train: 321,
                test: 109,
                clean: false,
                attributes: &[
                    "song", "artist", "album", "year", "genre", "duration", "label", "track",
                ],
            },
            Domain::Beer => DomainMeta {
                name: "Beer",
                arity: 4,
                card_a: 4345,
                card_b: 3000,
                train: 268,
                test: 91,
                clean: false,
                attributes: &["name", "brewery", "style", "abv"],
            },
            Domain::Stocks => DomainMeta {
                name: "Stocks",
                arity: 8,
                card_a: 2768,
                card_b: 21863,
                train: 4472,
                test: 1117,
                clean: false,
                attributes: &[
                    "symbol",
                    "company",
                    "sector",
                    "exchange",
                    "price",
                    "market_cap",
                    "pe",
                    "dividend",
                ],
            },
            Domain::Crm => DomainMeta {
                name: "CRM",
                arity: 12,
                card_a: 5742,
                card_b: 9683,
                train: 440,
                test: 220,
                clean: true,
                attributes: &[
                    "first_name",
                    "last_name",
                    "email",
                    "phone",
                    "company",
                    "street",
                    "city",
                    "state",
                    "zip",
                    "country",
                    "title",
                    "department",
                ],
            },
        }
    }

    /// Generates one canonical entity row for this domain.
    fn entity<R: Rng>(self, rng: &mut R) -> Vec<String> {
        use pools::*;
        match self {
            Domain::Restaurants => {
                let name = format!(
                    "{} {} {}",
                    proper_noun(rng),
                    pick(CUISINES, rng),
                    pick(RESTAURANT_WORDS, rng)
                );
                vec![
                    name,
                    address(rng),
                    pick(CITIES, rng).to_string(),
                    phone(rng),
                    pick(CUISINES, rng).to_string(),
                    pick(PRICE_BANDS, rng).to_string(),
                ]
            }
            Domain::Citations1 | Domain::Citations2 => {
                let title_len = rng.random_range(4..8usize);
                let mut title: Vec<&str> =
                    (0..title_len).map(|_| pick(RESEARCH_WORDS, rng)).collect();
                title.push(pick(RESEARCH_NOUNS, rng));
                let n_authors = rng.random_range(1..4usize);
                let authors = (0..n_authors)
                    .map(|_| format!("{} {}", pick(FIRST_NAMES, rng), pick(LAST_NAMES, rng)))
                    .collect::<Vec<_>>()
                    .join(", ");
                vec![
                    title.join(" "),
                    authors,
                    pick(VENUES, rng).to_string(),
                    rng.random_range(1990..2021u32).to_string(),
                ]
            }
            Domain::Cosmetics => {
                let brand = pick(COSMETIC_BRANDS, rng);
                let product = pick(COSMETIC_PRODUCTS, rng);
                let color = pick(COLORS, rng);
                // A shade number keeps colour variants of the same product
                // distinct entities (the paper's "only diverge in one
                // attribute, e.g., color" hard case) without making
                // unrelated products collide outright.
                let shade = rng.random_range(1..90u32);
                let filler = (0..rng.random_range(4..9usize))
                    .map(|_| pick(DESCRIPTION_FILLER, rng))
                    .collect::<Vec<_>>()
                    .join(" ");
                vec![
                    format!("{brand} {product} {color} {shade:02}"),
                    brand.to_string(),
                    format!("{product} shade {shade:02} in {color} {filler}"),
                ]
            }
            Domain::Software => {
                let name = format!(
                    "{} {} {} {}",
                    pick(SOFTWARE_BRANDS, rng),
                    pick(SOFTWARE_WORDS, rng),
                    pick(SOFTWARE_WORDS, rng),
                    rng.random_range(1..13u32)
                );
                let desc = (0..rng.random_range(8..18usize))
                    .map(|_| pick(DESCRIPTION_FILLER, rng))
                    .collect::<Vec<_>>()
                    .join(" ");
                vec![
                    name,
                    format!("{:.2}", rng.random_range(5.0..500.0f64)),
                    desc,
                ]
            }
            Domain::Music => {
                let song = (0..rng.random_range(2..4usize))
                    .map(|_| pick(MUSIC_WORDS, rng))
                    .collect::<Vec<_>>()
                    .join(" ");
                let artist = if rng.random_range(0.0f32..1.0) < 0.5 {
                    format!("the {}s", proper_noun(rng))
                } else {
                    format!("{} {}", pick(FIRST_NAMES, rng), pick(LAST_NAMES, rng))
                };
                let album = format!("{} {}", pick(MUSIC_WORDS, rng), pick(MUSIC_WORDS, rng));
                vec![
                    song,
                    artist,
                    album,
                    rng.random_range(1960..2021u32).to_string(),
                    pick(GENRES, rng).to_string(),
                    format!(
                        "{}:{:02}",
                        rng.random_range(2..6u32),
                        rng.random_range(0..60u32)
                    ),
                    pick(RECORD_LABELS, rng).to_string(),
                    rng.random_range(1..16u32).to_string(),
                ]
            }
            Domain::Beer => {
                let brewery_word = proper_noun(rng);
                // Beers are usually named after their brewery, which keeps
                // distinct beers from colliding on the small style pools.
                let name = format!(
                    "{} {} {}",
                    brewery_word,
                    pick(MUSIC_WORDS, rng),
                    pick(BEER_STYLES, rng)
                );
                let brewery = format!("{} {}", brewery_word, pick(BREWERY_WORDS, rng));
                vec![
                    name,
                    brewery,
                    pick(BEER_STYLES, rng).to_string(),
                    format!("{:.1}%", rng.random_range(3.5..12.0f64)),
                ]
            }
            Domain::Stocks => {
                let word = proper_noun(rng);
                let symbol: String = word
                    .chars()
                    .take(rng.random_range(3..5usize))
                    .collect::<String>()
                    .to_uppercase();
                let company = format!("{} {}", word, pick(COMPANY_SUFFIXES, rng));
                vec![
                    symbol,
                    company,
                    pick(SECTORS, rng).to_string(),
                    pick(EXCHANGES, rng).to_string(),
                    format!("{:.2}", rng.random_range(1.0..900.0f64)),
                    format!("{}m", rng.random_range(10..900_000u64)),
                    format!("{:.1}", rng.random_range(2.0..80.0f64)),
                    format!("{:.2}%", rng.random_range(0.0..8.0f64)),
                ]
            }
            Domain::Crm => {
                let first = pick(FIRST_NAMES, rng).to_string();
                let last = pick(LAST_NAMES, rng).to_string();
                let company = format!("{} {}", proper_noun(rng), pick(COMPANY_SUFFIXES, rng));
                let email_domain = company.split(' ').next().unwrap_or("mail").to_string();
                vec![
                    first.clone(),
                    last.clone(),
                    format!("{first}.{last}@{email_domain}.com"),
                    phone(rng),
                    company,
                    address(rng),
                    pick(CITIES, rng).to_string(),
                    pick(STATES, rng).to_string(),
                    format!("{:05}", rng.random_range(10_000..99_999u32)),
                    "usa".to_string(),
                    pick(JOB_TITLES, rng).to_string(),
                    pick(DEPARTMENTS, rng).to_string(),
                ]
            }
        }
    }
}

impl std::fmt::Display for Domain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.meta().name)
    }
}

/// How far to shrink the paper's cardinalities, so experiments run on a
/// laptop in seconds-to-minutes instead of a GPU backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Unit-test scale: tables of ≤ 120 rows.
    Tiny,
    /// Quick-experiment scale: tables of ≤ 400 rows.
    Small,
    /// Benchmark scale used by the reported experiments: ≤ 1500 rows.
    Paper,
}

impl Scale {
    /// Shrinks a paper-scale count.
    pub fn shrink(self, n: usize) -> usize {
        let (divisor, lo, hi) = match self {
            Scale::Tiny => (30, 40, 120),
            Scale::Small => (12, 80, 400),
            Scale::Paper => (6, 120, 1500),
        };
        (n / divisor).clamp(lo, hi.min(n.max(lo)))
    }
}

/// A fully specified benchmark generation request.
#[derive(Debug, Clone, Copy)]
pub struct DomainSpec {
    /// The domain to generate.
    pub domain: Domain,
    /// The size band.
    pub scale: Scale,
}

impl DomainSpec {
    /// New spec.
    pub fn new(domain: Domain, scale: Scale) -> Self {
        Self { domain, scale }
    }

    /// Generates the two tables, ground truth, and labelled splits.
    ///
    /// Construction: canonical entities are rendered once into table A
    /// (verbatim) and — for roughly half of B's rows — re-rendered through
    /// the domain's [`NoiseProfile`] into table B (these are the
    /// duplicates). The rest of B holds fresh entities. Labelled pairs mix
    /// all duplicates with 3× as many negatives, half of them *hard*
    /// (sharing a first-attribute token with the positive's left tuple).
    pub fn generate(&self, seed: u64) -> Dataset {
        let meta = self.domain.meta();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xDA7A_5E0D);
        let card_a = self.scale.shrink(meta.card_a);
        let card_b = self.scale.shrink(meta.card_b);
        let noise = if meta.clean {
            NoiseProfile::clean()
        } else {
            NoiseProfile::noisy()
        };
        let perturber = Perturber::new(noise);

        // Canonical entities: enough for A plus B's non-duplicates.
        let dup_count = (card_a.min(card_b) as f32 * 0.45) as usize;
        let n_entities = card_a + (card_b - dup_count);
        let entities: Vec<Vec<String>> = (0..n_entities)
            .map(|_| self.domain.entity(&mut rng))
            .collect();

        let schema_a = Schema {
            name: format!("{}_a", meta.name),
            attributes: meta.attributes.iter().map(|&s| s.to_string()).collect(),
        };
        let schema_b = Schema {
            name: format!("{}_b", meta.name),
            ..schema_a.clone()
        };

        let mut table_a = Table::new(schema_a);
        for e in entities.iter().take(card_a) {
            table_a.push(e.clone());
        }

        // Table B: duplicates of a spread of A's entities + fresh entities.
        let mut b_rows: Vec<(Vec<String>, Option<usize>)> = Vec::with_capacity(card_b);
        let stride = (card_a / dup_count.max(1)).max(1);
        let mut source = 0usize;
        for _ in 0..dup_count {
            // Heterogeneous duplicate difficulty: a third of duplicates are
            // near-exact copies, a third typical, a third heavily mangled.
            // This heterogeneity is what makes label *diversity* matter
            // (paper §V-B3) and keeps bootstrap seeds from covering the
            // whole positive distribution.
            let factor = match rng.random_range(0..3u8) {
                0 => 0.3,
                1 => 1.0,
                _ => 2.2,
            };
            let scaled = Perturber::new(perturber.profile().scaled(factor));
            let row = scaled.row(&entities[source], &mut rng);
            b_rows.push((row, Some(source)));
            source = (source + stride) % card_a;
        }
        for e in entities.iter().skip(card_a).take(card_b - dup_count) {
            b_rows.push((perturber.row(e, &mut rng), None));
        }
        // Shuffle B so duplicates are not clustered at the top.
        for i in (1..b_rows.len()).rev() {
            let j = rng.random_range(0..=i);
            b_rows.swap(i, j);
        }
        let mut table_b = Table::new(schema_b);
        let mut duplicates: Vec<(usize, usize)> = Vec::new();
        for (b_idx, (row, src)) in b_rows.into_iter().enumerate() {
            table_b.push(row);
            if let Some(a_idx) = src {
                duplicates.push((a_idx, b_idx));
            }
        }
        duplicates.sort_unstable();

        let (train_pairs, test_pairs) =
            build_pair_splits(&table_a, &table_b, &duplicates, &meta, self.scale, &mut rng);

        Dataset {
            name: meta.name.to_string(),
            domain: self.domain,
            table_a,
            table_b,
            duplicates,
            train_pairs,
            test_pairs,
        }
    }
}

/// Builds train/test [`PairSet`]s: all (sampled) positives + 3× negatives
/// (half hard, half random), split according to the paper's train:test
/// ratio for the domain.
fn build_pair_splits<R: Rng>(
    table_a: &Table,
    table_b: &Table,
    duplicates: &[(usize, usize)],
    meta: &DomainMeta,
    scale: Scale,
    rng: &mut R,
) -> (PairSet, PairSet) {
    let total_budget = scale.shrink(meta.train + meta.test);
    let pos: Vec<(usize, usize)> = duplicates.to_vec();
    let n_pos = pos.len().min((total_budget / 4).max(8));
    // Subsample positives when the budget is tighter than the truth set.
    let mut pos_sample = pos;
    while pos_sample.len() > n_pos {
        let i = rng.random_range(0..pos_sample.len());
        pos_sample.swap_remove(i);
    }
    let n_neg = n_pos * 3;

    // Inverted index over table B's first attribute for hard negatives.
    let mut token_index: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    for (i, row) in table_b.rows().iter().enumerate() {
        for tok in row[0].split_whitespace() {
            token_index.entry(tok.to_string()).or_default().push(i);
        }
    }
    let dup_set: std::collections::BTreeSet<(usize, usize)> = duplicates.iter().copied().collect();
    let mut negatives: Vec<(usize, usize)> = Vec::with_capacity(n_neg);
    let mut seen: std::collections::BTreeSet<(usize, usize)> = std::collections::BTreeSet::new();
    let mut attempts = 0;
    while negatives.len() < n_neg && attempts < n_neg * 50 {
        attempts += 1;
        let a_idx = rng.random_range(0..table_a.len());
        let hard = rng.random_range(0.0f32..1.0) < 0.5;
        let b_idx = if hard {
            // Pick a B row sharing a token with A's first attribute.
            let tokens: Vec<&str> = table_a.row(a_idx)[0].split_whitespace().collect();
            if tokens.is_empty() {
                rng.random_range(0..table_b.len())
            } else {
                let tok = tokens[rng.random_range(0..tokens.len())];
                match token_index.get(tok) {
                    Some(rows) if !rows.is_empty() => rows[rng.random_range(0..rows.len())],
                    _ => rng.random_range(0..table_b.len()),
                }
            }
        } else {
            rng.random_range(0..table_b.len())
        };
        let pair = (a_idx, b_idx);
        if dup_set.contains(&pair) || !seen.insert(pair) {
            continue;
        }
        negatives.push(pair);
    }

    // Stratified split by the domain's train:test proportion: positives
    // and negatives are split *separately* so both classes land in both
    // splits whenever a class has at least two members. (A plain shuffled
    // split regularly dropped every positive from the small test side at
    // Tiny scale, which makes test-set F1 structurally zero.)
    fn shuffle<R: Rng>(pairs: &mut [LabeledPair], rng: &mut R) {
        for i in (1..pairs.len()).rev() {
            let j = rng.random_range(0..=i);
            pairs.swap(i, j);
        }
    }
    let train_frac = meta.train as f32 / (meta.train + meta.test) as f32;
    let mut train: Vec<LabeledPair> = Vec::new();
    let mut test: Vec<LabeledPair> = Vec::new();
    for (pairs, is_match) in [(&pos_sample, true), (&negatives, false)] {
        let mut stratum: Vec<LabeledPair> = pairs
            .iter()
            .map(|&(l, r)| LabeledPair {
                left: l,
                right: r,
                is_match,
            })
            .collect();
        shuffle(&mut stratum, rng);
        let n = stratum.len();
        let mut n_train = ((n as f32) * train_frac).round() as usize;
        if n >= 2 {
            n_train = n_train.clamp(1, n - 1);
        }
        let stratum_test = stratum.split_off(n_train.min(n));
        train.extend(stratum);
        test.extend(stratum_test);
    }
    shuffle(&mut train, rng);
    shuffle(&mut test, rng);
    (PairSet { pairs: train }, PairSet { pairs: test })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meta_matches_table_ii() {
        assert_eq!(Domain::ALL.len(), 9);
        let m = Domain::Restaurants.meta();
        assert_eq!((m.card_a, m.card_b, m.arity), (533, 331, 6));
        assert!(m.clean);
        let s = Domain::Software.meta();
        assert!(!s.clean);
        assert_eq!(s.arity, 3);
        for d in Domain::ALL {
            let m = d.meta();
            assert_eq!(m.attributes.len(), m.arity, "{}", m.name);
        }
    }

    #[test]
    fn generate_respects_shapes() {
        for d in [Domain::Restaurants, Domain::Software, Domain::Crm] {
            let ds = DomainSpec::new(d, Scale::Tiny).generate(7);
            let meta = d.meta();
            assert_eq!(ds.table_a.schema.arity(), meta.arity);
            assert_eq!(ds.table_b.schema.arity(), meta.arity);
            assert!(ds.table_a.len() >= 40);
            assert!(!ds.duplicates.is_empty());
            ds.train_pairs.validate(&ds.table_a, &ds.table_b).unwrap();
            ds.test_pairs.validate(&ds.table_a, &ds.table_b).unwrap();
        }
    }

    #[test]
    fn duplicates_reference_valid_rows_and_are_unique() {
        let ds = DomainSpec::new(Domain::Music, Scale::Tiny).generate(3);
        let mut seen = std::collections::HashSet::new();
        for &(a, b) in &ds.duplicates {
            assert!(a < ds.table_a.len());
            assert!(b < ds.table_b.len());
            assert!(seen.insert((a, b)), "duplicate ground-truth pair");
        }
    }

    #[test]
    fn splits_have_both_classes() {
        let ds = DomainSpec::new(Domain::Citations1, Scale::Tiny).generate(11);
        assert!(ds.train_pairs.num_positive() > 0);
        assert!(ds.train_pairs.num_negative() > 0);
        assert!(ds.test_pairs.num_positive() > 0);
        assert!(ds.test_pairs.num_negative() > 0);
        // Negatives dominate ~3:1.
        let ratio = ds.train_pairs.num_negative() as f32 / ds.train_pairs.num_positive() as f32;
        assert!((1.5..6.0).contains(&ratio), "neg:pos ratio {ratio}");
    }

    #[test]
    fn noisy_domains_have_more_missing_values() {
        let clean = DomainSpec::new(Domain::Citations1, Scale::Tiny).generate(5);
        let noisy = DomainSpec::new(Domain::Cosmetics, Scale::Tiny).generate(5);
        assert!(noisy.table_b.missing_rate() > clean.table_b.missing_rate());
    }

    #[test]
    fn deterministic_given_seed() {
        let a = DomainSpec::new(Domain::Beer, Scale::Tiny).generate(9);
        let b = DomainSpec::new(Domain::Beer, Scale::Tiny).generate(9);
        assert_eq!(a.table_a, b.table_a);
        assert_eq!(a.table_b, b.table_b);
        assert_eq!(a.duplicates, b.duplicates);
        assert_eq!(a.train_pairs, b.train_pairs);
        let c = DomainSpec::new(Domain::Beer, Scale::Tiny).generate(10);
        assert_ne!(a.table_a, c.table_a);
    }

    #[test]
    fn scale_shrink_monotone() {
        for d in Domain::ALL {
            let m = d.meta();
            assert!(Scale::Tiny.shrink(m.card_a) <= Scale::Small.shrink(m.card_a));
            assert!(Scale::Small.shrink(m.card_a) <= Scale::Paper.shrink(m.card_a));
        }
    }

    #[test]
    fn duplicates_share_surface_tokens_mostly() {
        let ds = DomainSpec::new(Domain::Restaurants, Scale::Tiny).generate(21);
        let mut overlapping = 0;
        for &(a, b) in &ds.duplicates {
            let name_a = &ds.table_a.row(a)[0];
            let name_b = &ds.table_b.row(b)[0];
            if name_a
                .split_whitespace()
                .any(|t| name_b.split_whitespace().any(|u| u == t))
            {
                overlapping += 1;
            }
        }
        let frac = overlapping as f32 / ds.duplicates.len() as f32;
        assert!(frac > 0.7, "only {frac:.2} of duplicates share name tokens");
    }
}
