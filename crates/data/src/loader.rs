//! Loading real benchmark datasets from CSV files.
//!
//! The DeepMatcher benchmark distributes each domain as `tableA.csv`,
//! `tableB.csv`, and `train/valid/test.csv` pair files with
//! `ltable_id,rtable_id,label` columns. This loader accepts that layout,
//! so the synthetic generators can be swapped for the real data whenever
//! it is available — every experiment harness operates on [`Dataset`]
//! and does not care where it came from.

use crate::csv::from_csv;
use crate::dataset::Dataset;
use crate::domains::Domain;
use crate::pairs::{LabeledPair, PairSet};
use crate::table::Table;
use crate::DataError;

/// Parses a DeepMatcher-style pair file: a header containing (at least)
/// `ltable_id`, `rtable_id`, `label` columns, in any order.
///
/// # Errors
/// [`DataError::MissingHeader`] when required columns are absent, or any
/// CSV parse error.
pub fn pairs_from_csv(text: &str) -> Result<PairSet, DataError> {
    let table = from_csv("pairs", text)?;
    let col = |name: &str| {
        table
            .schema
            .attributes
            .iter()
            .position(|a| a.eq_ignore_ascii_case(name))
            .ok_or(DataError::MissingHeader)
    };
    let l = col("ltable_id")?;
    let r = col("rtable_id")?;
    let y = col("label")?;
    let mut pairs = PairSet::new();
    for (i, row) in table.rows().iter().enumerate() {
        let parse = |field: &str| -> Result<usize, DataError> {
            field.trim().parse().map_err(|_| DataError::RaggedRow {
                line: i + 2,
                found: 0,
                expected: 3,
            })
        };
        pairs.pairs.push(LabeledPair {
            left: parse(&row[l])?,
            right: parse(&row[r])?,
            is_match: row[y].trim() == "1",
        });
    }
    Ok(pairs)
}

/// Assembles a [`Dataset`] from already-parsed pieces, validating indices
/// and deriving the ground-truth duplicate list from the labelled splits.
///
/// The first column of each table is dropped if it is named `id`
/// (DeepMatcher tables carry a surrogate-key column the pair files
/// reference; VAER treats rows positionally).
///
/// # Errors
/// Index-validation failures from the pair sets.
pub fn assemble_dataset(
    name: &str,
    domain: Domain,
    mut table_a: Table,
    mut table_b: Table,
    train: PairSet,
    test: PairSet,
) -> Result<Dataset, DataError> {
    table_a = strip_id_column(table_a);
    table_b = strip_id_column(table_b);
    train.validate(&table_a, &table_b)?;
    test.validate(&table_a, &table_b)?;
    let mut duplicates: Vec<(usize, usize)> = train
        .pairs
        .iter()
        .chain(test.pairs.iter())
        .filter(|p| p.is_match)
        .map(|p| (p.left, p.right))
        .collect();
    duplicates.sort_unstable();
    duplicates.dedup();
    Ok(Dataset {
        name: name.to_string(),
        domain,
        table_a,
        table_b,
        duplicates,
        train_pairs: train,
        test_pairs: test,
    })
}

fn strip_id_column(table: Table) -> Table {
    if table
        .schema
        .attributes
        .first()
        .is_some_and(|a| a.eq_ignore_ascii_case("id"))
    {
        let mut schema = table.schema.clone();
        schema.attributes.remove(0);
        let mut out = Table::new(schema);
        for row in table.rows() {
            out.push(row[1..].to_vec());
        }
        out
    } else {
        table
    }
}

/// Loads a complete dataset from CSV strings in the DeepMatcher layout.
///
/// # Errors
/// Any parse or validation failure.
pub fn dataset_from_csv_strings(
    name: &str,
    domain: Domain,
    table_a_csv: &str,
    table_b_csv: &str,
    train_csv: &str,
    test_csv: &str,
) -> Result<Dataset, DataError> {
    let table_a = from_csv(&format!("{name}_a"), table_a_csv)?;
    let table_b = from_csv(&format!("{name}_b"), table_b_csv)?;
    let train = pairs_from_csv(train_csv)?;
    let test = pairs_from_csv(test_csv)?;
    assemble_dataset(name, domain, table_a, table_b, train, test)
}

#[cfg(test)]
mod tests {
    use super::*;

    const TABLE_A: &str = "id,name,city\n0,blue moon cafe,seattle\n1,red sun diner,portland\n";
    const TABLE_B: &str = "id,name,city\n0,blue moon café,seattle\n1,green hill bar,austin\n";
    const TRAIN: &str = "ltable_id,rtable_id,label\n0,0,1\n1,1,0\n";
    const TEST: &str = "ltable_id,rtable_id,label\n1,0,0\n";

    #[test]
    fn loads_deepmatcher_layout() {
        let ds =
            dataset_from_csv_strings("demo", Domain::Restaurants, TABLE_A, TABLE_B, TRAIN, TEST)
                .unwrap();
        assert_eq!(ds.table_a.len(), 2);
        // `id` column stripped.
        assert_eq!(ds.table_a.schema.attributes, vec!["name", "city"]);
        assert_eq!(ds.table_a.value(0, 0), "blue moon cafe");
        assert_eq!(ds.train_pairs.len(), 2);
        assert_eq!(ds.train_pairs.num_positive(), 1);
        assert_eq!(ds.duplicates, vec![(0, 0)]);
    }

    #[test]
    fn pair_columns_found_in_any_order() {
        let pairs = pairs_from_csv("label,rtable_id,ltable_id\n1,3,2\n").unwrap();
        assert_eq!(
            pairs.pairs[0],
            LabeledPair {
                left: 2,
                right: 3,
                is_match: true
            }
        );
    }

    #[test]
    fn missing_columns_error() {
        assert!(pairs_from_csv("a,b\n1,2\n").is_err());
    }

    #[test]
    fn non_numeric_ids_error() {
        assert!(pairs_from_csv("ltable_id,rtable_id,label\nx,0,1\n").is_err());
    }

    #[test]
    fn out_of_range_pairs_rejected() {
        let bad_train = "ltable_id,rtable_id,label\n9,0,1\n";
        assert!(dataset_from_csv_strings(
            "demo",
            Domain::Restaurants,
            TABLE_A,
            TABLE_B,
            bad_train,
            TEST
        )
        .is_err());
    }

    #[test]
    fn tables_without_id_column_kept_as_is() {
        let a = from_csv("a", "name\nx\n").unwrap();
        let b = from_csv("b", "name\ny\n").unwrap();
        let ds = assemble_dataset(
            "d",
            Domain::Beer,
            a,
            b,
            pairs_from_csv("ltable_id,rtable_id,label\n0,0,1\n").unwrap(),
            PairSet::new(),
        )
        .unwrap();
        assert_eq!(ds.table_a.schema.attributes, vec!["name"]);
    }
}
