//! Labelled tuple pairs: the supervision format of the matching task.

use crate::table::Table;
use crate::DataError;

/// One labelled example: a row of table A, a row of table B, and whether
/// they refer to the same real-world entity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LabeledPair {
    /// Row index into table A.
    pub left: usize,
    /// Row index into table B.
    pub right: usize,
    /// `true` for duplicates.
    pub is_match: bool,
}

/// A set of labelled pairs (a train or test split).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PairSet {
    /// The pairs.
    pub pairs: Vec<LabeledPair>,
}

impl PairSet {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether there are no pairs.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Number of positive (duplicate) pairs.
    pub fn num_positive(&self) -> usize {
        self.pairs.iter().filter(|p| p.is_match).count()
    }

    /// Number of negative pairs.
    pub fn num_negative(&self) -> usize {
        self.len() - self.num_positive()
    }

    /// Validates every index against the two tables.
    ///
    /// # Errors
    /// [`DataError::PairOutOfBounds`] for the first offending pair.
    pub fn validate(&self, a: &Table, b: &Table) -> Result<(), DataError> {
        // vaer-lint: allow(cancel-probe-coverage) -- single bounds pass over the pair list at load time
        for p in &self.pairs {
            if p.left >= a.len() {
                return Err(DataError::PairOutOfBounds {
                    side: "left",
                    index: p.left,
                    len: a.len(),
                });
            }
            if p.right >= b.len() {
                return Err(DataError::PairOutOfBounds {
                    side: "right",
                    index: p.right,
                    len: b.len(),
                });
            }
        }
        Ok(())
    }

    /// The actual labels as a boolean vector (for metric computation).
    pub fn labels(&self) -> Vec<bool> {
        self.pairs.iter().map(|p| p.is_match).collect()
    }
}

impl FromIterator<LabeledPair> for PairSet {
    fn from_iter<T: IntoIterator<Item = LabeledPair>>(iter: T) -> Self {
        Self {
            pairs: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::{Schema, Table};

    fn tables() -> (Table, Table) {
        let mut a = Table::new(Schema::new("a", &["x"]));
        a.push(vec!["1".into()]);
        a.push(vec!["2".into()]);
        let mut b = Table::new(Schema::new("b", &["x"]));
        b.push(vec!["1".into()]);
        (a, b)
    }

    #[test]
    fn counts() {
        let set: PairSet = [
            LabeledPair {
                left: 0,
                right: 0,
                is_match: true,
            },
            LabeledPair {
                left: 1,
                right: 0,
                is_match: false,
            },
        ]
        .into_iter()
        .collect();
        assert_eq!(set.len(), 2);
        assert_eq!(set.num_positive(), 1);
        assert_eq!(set.num_negative(), 1);
        assert_eq!(set.labels(), vec![true, false]);
    }

    #[test]
    fn validate_catches_out_of_bounds() {
        let (a, b) = tables();
        let good: PairSet = [LabeledPair {
            left: 1,
            right: 0,
            is_match: true,
        }]
        .into_iter()
        .collect();
        assert!(good.validate(&a, &b).is_ok());
        let bad_left: PairSet = [LabeledPair {
            left: 2,
            right: 0,
            is_match: true,
        }]
        .into_iter()
        .collect();
        assert!(matches!(
            bad_left.validate(&a, &b),
            Err(DataError::PairOutOfBounds { side: "left", .. })
        ));
        let bad_right: PairSet = [LabeledPair {
            left: 0,
            right: 5,
            is_match: true,
        }]
        .into_iter()
        .collect();
        assert!(matches!(
            bad_right.validate(&a, &b),
            Err(DataError::PairOutOfBounds { side: "right", .. })
        ));
    }
}
