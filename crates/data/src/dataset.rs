//! The bundled experiment input: two tables, ground truth, and splits.

use crate::domains::Domain;
use crate::oracle::Oracle;
use crate::pairs::PairSet;
use crate::table::Table;

/// Everything one ER experiment consumes.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Display name (matches the paper's Table II rows).
    pub name: String,
    /// The domain this dataset was generated from.
    pub domain: Domain,
    /// Left table.
    pub table_a: Table,
    /// Right table.
    pub table_b: Table,
    /// Complete ground truth: every duplicate `(a_row, b_row)`.
    pub duplicates: Vec<(usize, usize)>,
    /// Labelled training pairs.
    pub train_pairs: PairSet,
    /// Labelled test pairs.
    pub test_pairs: PairSet,
}

impl Dataset {
    /// A ground-truth labelling oracle over this dataset.
    pub fn oracle(&self) -> Oracle {
        Oracle::new(self.duplicates.iter().copied())
    }

    /// Every attribute value of both tables as a sentence corpus
    /// (paper §III-B), table A first.
    pub fn all_sentences(&self) -> Vec<String> {
        self.table_a
            .sentences()
            .chain(self.table_b.sentences())
            .map(str::to_owned)
            .collect()
    }

    /// Raw rows of both tables — the relational input EmbDI requires.
    pub fn tables_raw(&self) -> Vec<Vec<Vec<String>>> {
        vec![self.table_a.rows().to_vec(), self.table_b.rows().to_vec()]
    }

    /// A one-line summary (cardinalities, arity, split sizes).
    pub fn summary(&self) -> String {
        format!(
            "{}: {}/{} rows, arity {}, {} duplicates, {} train / {} test pairs",
            self.name,
            self.table_a.len(),
            self.table_b.len(),
            self.table_a.schema.arity(),
            self.duplicates.len(),
            self.train_pairs.len(),
            self.test_pairs.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domains::{DomainSpec, Scale};

    fn demo() -> Dataset {
        DomainSpec::new(Domain::Restaurants, Scale::Tiny).generate(1)
    }

    #[test]
    fn oracle_agrees_with_ground_truth() {
        let ds = demo();
        let oracle = ds.oracle();
        assert_eq!(oracle.num_duplicates(), ds.duplicates.len());
        let &(a, b) = ds.duplicates.first().unwrap();
        assert!(oracle.peek(a, b));
    }

    #[test]
    fn sentence_corpus_covers_both_tables() {
        let ds = demo();
        let sentences = ds.all_sentences();
        let expected = ds.table_a.len() * ds.table_a.schema.arity()
            + ds.table_b.len() * ds.table_b.schema.arity();
        assert_eq!(sentences.len(), expected);
    }

    #[test]
    fn raw_tables_shape() {
        let ds = demo();
        let raw = ds.tables_raw();
        assert_eq!(raw.len(), 2);
        assert_eq!(raw[0].len(), ds.table_a.len());
        assert_eq!(raw[1][0].len(), ds.table_b.schema.arity());
    }

    #[test]
    fn summary_mentions_name() {
        let ds = demo();
        assert!(ds.summary().contains("Rest."));
    }
}
