//! The labelling oracle: simulates the human in the active-learning loop.

use std::cell::Cell;
use std::collections::BTreeSet;

/// Ground-truth labeller with a query counter.
///
/// Algorithm 2's `label(·)` calls are the paper's only point of user
/// involvement; experiments measure labelling *cost* as the number of
/// oracle queries, so the counter is part of the interface. Repeat queries
/// for the same pair are answered from memory and not re-billed.
#[derive(Debug)]
pub struct Oracle {
    truth: BTreeSet<(usize, usize)>,
    asked: std::cell::RefCell<BTreeSet<(usize, usize)>>,
    queries: Cell<usize>,
}

impl Oracle {
    /// Builds an oracle from the complete set of duplicate `(left, right)`
    /// row-index pairs.
    pub fn new(duplicates: impl IntoIterator<Item = (usize, usize)>) -> Self {
        Self {
            truth: duplicates.into_iter().collect(),
            asked: std::cell::RefCell::new(BTreeSet::new()),
            queries: Cell::new(0),
        }
    }

    /// Labels a pair, billing one query unless this exact pair was asked
    /// before.
    pub fn label(&self, left: usize, right: usize) -> bool {
        if self.asked.borrow_mut().insert((left, right)) {
            self.queries.set(self.queries.get() + 1);
        }
        self.truth.contains(&(left, right))
    }

    /// Checks ground truth *without* billing (for evaluation code only).
    pub fn peek(&self, left: usize, right: usize) -> bool {
        self.truth.contains(&(left, right))
    }

    /// Number of billed labelling queries so far.
    pub fn queries_used(&self) -> usize {
        self.queries.get()
    }

    /// Total number of duplicate pairs known to the oracle.
    pub fn num_duplicates(&self) -> usize {
        self.truth.len()
    }

    /// All duplicate pairs (for building evaluation sets).
    pub fn duplicates(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.truth.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_and_bills() {
        let o = Oracle::new([(0, 1), (2, 3)]);
        assert!(o.label(0, 1));
        assert!(!o.label(0, 2));
        assert_eq!(o.queries_used(), 2);
    }

    #[test]
    fn repeat_queries_not_rebilled() {
        let o = Oracle::new([(0, 1)]);
        o.label(0, 1);
        o.label(0, 1);
        o.label(0, 1);
        assert_eq!(o.queries_used(), 1);
    }

    #[test]
    fn peek_is_free() {
        let o = Oracle::new([(5, 5)]);
        assert!(o.peek(5, 5));
        assert!(!o.peek(1, 1));
        assert_eq!(o.queries_used(), 0);
    }

    #[test]
    fn duplicate_census() {
        let o = Oracle::new([(0, 0), (1, 1)]);
        assert_eq!(o.num_duplicates(), 2);
        let mut d: Vec<_> = o.duplicates().collect();
        d.sort_unstable();
        assert_eq!(d, vec![(0, 0), (1, 1)]);
    }
}
