//! A vendored, dependency-free stand-in for the subset of the `rand`
//! crate API that VAER uses.
//!
//! The build environment has no access to crates.io, so this workspace
//! ships its own implementation of the traits and generators the code
//! depends on: [`Rng`], [`RngExt::random_range`], [`SeedableRng`], and
//! [`rngs::StdRng`]. The generator is xoshiro256++ seeded through
//! SplitMix64 — deterministic across platforms, statistically solid for
//! simulation workloads, and not cryptographically secure (which VAER
//! never needs).
//!
//! Streams are NOT compatible with the upstream `rand` crate; every
//! consumer in this workspace seeds explicitly via
//! [`SeedableRng::seed_from_u64`], so only internal reproducibility
//! matters.

/// A source of random bits.
pub trait Rng {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32-bit value (top half of [`next_u64`](Self::next_u64)).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A range that [`RngExt::random_range`] can sample `T` from uniformly.
///
/// The element type is a trait parameter (mirroring upstream `rand`) so
/// type inference can flow backwards from an annotated binding into an
/// unsuffixed range literal, e.g. `let x: f32 = rng.random_range(0.0..1.0)`.
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    ///
    /// # Panics
    /// Panics on an empty range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64 + 1;
                if span == 0 {
                    // Full-width range: every value is admissible.
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f32> for std::ops::Range<f32> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        // 24 high bits give a uniform dyadic rational in [0, 1).
        let unit = ((rng.next_u64() >> 40) as f32) / (1u32 << 24) as f32;
        self.start + (self.end - self.start) * unit
    }
}

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        // 53 high bits give a uniform dyadic rational in [0, 1).
        let unit = ((rng.next_u64() >> 11) as f64) / (1u64 << 53) as f64;
        self.start + (self.end - self.start) * unit
    }
}

/// Convenience sampling methods over any [`Rng`].
pub trait RngExt: Rng {
    /// Uniform value from `range` (half-open or inclusive).
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Uniform `bool` with probability `p` of `true`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random_range(0.0f64..1.0) < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Generators constructible from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generator types, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ with SplitMix64
    /// seed expansion.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl StdRng {
        /// The raw xoshiro256++ state, for checkpointing a generator
        /// mid-stream. Restoring via [`StdRng::from_state`] continues the
        /// stream exactly where [`state`](StdRng::state) captured it.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a captured [`state`](StdRng::state).
        ///
        /// The all-zero state is a fixed point of xoshiro256++ (the
        /// generator would emit zeros forever); it never occurs in a
        /// seeded stream, but corrupted checkpoints could supply it, so
        /// it is mapped to the `seed_from_u64(0)` state instead.
        pub fn from_state(s: [u64; 4]) -> Self {
            if s == [0; 4] {
                return <Self as SeedableRng>::seed_from_u64(0);
            }
            Self { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn int_ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..2000 {
            let x = rng.random_range(3..17usize);
            assert!((3..17).contains(&x));
            let y = rng.random_range(0..=4u32);
            assert!(y <= 4);
            let z = rng.random_range(-5..5i32);
            assert!((-5..5).contains(&z));
        }
    }

    #[test]
    fn int_ranges_hit_every_value() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[rng.random_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn float_ranges_respect_bounds_and_mean() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 20_000;
        let mut sum = 0.0f64;
        for _ in 0..n {
            let x = rng.random_range(-2.0f32..6.0);
            assert!((-2.0..6.0).contains(&x));
            sum += x as f64;
        }
        let mean = sum / n as f64;
        assert!((mean - 2.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    #[should_panic]
    fn empty_range_panics() {
        StdRng::seed_from_u64(5).random_range(3..3usize);
    }

    #[test]
    fn state_round_trip_resumes_stream() {
        let mut a = StdRng::seed_from_u64(7);
        for _ in 0..17 {
            a.next_u64();
        }
        let snapshot = a.state();
        let tail: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let mut b = StdRng::from_state(snapshot);
        let resumed: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        assert_eq!(tail, resumed);
        // The degenerate all-zero state is remapped, not honoured.
        let mut z = StdRng::from_state([0; 4]);
        assert_ne!(z.next_u64(), 0);
    }

    #[test]
    fn works_through_mut_reference() {
        fn draw<R: Rng>(rng: &mut R) -> u64 {
            rng.next_u64()
        }
        let mut rng = StdRng::seed_from_u64(6);
        let _ = draw(&mut &mut rng);
    }
}
