//! Integration tests of persistence: representation-model save/load, CSV
//! round-trips of generated benchmark tables, and corruption fuzzing of
//! every binary format (a corrupt file must come back as `Err`, never as
//! a panic or a silently wrong model).

use rand::{rngs::StdRng, RngExt, SeedableRng};
use vaer::core::checkpoint::CheckpointStore;
use vaer::core::pipeline::{Pipeline, PipelineConfig};
use vaer::core::repr::ReprModel;
use vaer::data::csv::{from_csv, to_csv};
use vaer::data::domains::{Domain, DomainSpec, Scale};
use vaer::linalg::Matrix;
use vaer::nn::{Adam, Optimizer, ParamStore};

#[test]
fn repr_model_survives_disk_round_trip() {
    let ds = DomainSpec::new(Domain::Beer, Scale::Tiny).generate(8);
    let mut config = PipelineConfig::fast();
    config.seed = 8;
    let pipeline = Pipeline::fit(&ds, &config).unwrap();
    let bytes = pipeline.repr().to_bytes();
    let restored = ReprModel::from_bytes(&bytes).unwrap();
    // Encodings must be bit-identical.
    let (irs_a, _) = pipeline.ir_tables();
    let orig = pipeline.repr().encode(&irs_a.irs);
    let back = restored.encode(&irs_a.irs);
    assert_eq!(orig.len(), back.len());
    for (a, b) in orig.iter().zip(back.iter()) {
        assert_eq!(a.mu, b.mu);
        assert_eq!(a.sigma, b.sigma);
    }
}

#[test]
fn generated_tables_round_trip_through_csv() {
    for domain in [Domain::Restaurants, Domain::Software, Domain::Crm] {
        let ds = DomainSpec::new(domain, Scale::Tiny).generate(12);
        for table in [&ds.table_a, &ds.table_b] {
            let csv = to_csv(table);
            let back = from_csv(&table.schema.name, &csv).unwrap();
            assert_eq!(&back, table, "{domain:?}/{}", table.schema.name);
        }
    }
}

#[test]
fn corrupted_model_bytes_are_rejected() {
    let ds = DomainSpec::new(Domain::Beer, Scale::Tiny).generate(9);
    let mut config = PipelineConfig::fast();
    config.seed = 9;
    let pipeline = Pipeline::fit(&ds, &config).unwrap();
    let mut bytes = pipeline.repr().to_bytes();
    // Flip the magic.
    bytes[0] ^= 0xFF;
    assert!(ReprModel::from_bytes(&bytes).is_err());
    // Truncate the payload.
    let mut short = pipeline.repr().to_bytes();
    short.truncate(short.len() / 2);
    assert!(ReprModel::from_bytes(&short).is_err());
}

/// A parameter store + optimizer mid-training, as a crash would leave them.
fn trained_store_and_adam() -> (ParamStore, Adam) {
    let mut rng = StdRng::seed_from_u64(0x5EED);
    let mut store = ParamStore::new();
    let mut ids = Vec::new();
    for (name, rows, cols) in [("enc.w", 6, 4), ("enc.b", 1, 4), ("dec.w", 4, 6)] {
        let data: Vec<f32> = (0..rows * cols)
            .map(|_| rng.random_range(-1.0..1.0))
            .collect();
        ids.push(store.add(name, Matrix::from_vec(rows, cols, data)));
    }
    let mut adam = Adam::new(1e-3, 0.9, 0.999, 1e-8);
    for _ in 0..3 {
        let grads: Vec<_> = ids
            .iter()
            .map(|&id| {
                let shape = store.get(id).shape();
                let g: Vec<f32> = (0..shape.0 * shape.1)
                    .map(|_| rng.random_range(-0.1..0.1))
                    .collect();
                (id, Matrix::from_vec(shape.0, shape.1, g))
            })
            .collect();
        adam.step(&mut store, &grads);
    }
    (store, adam)
}

/// Applies one seeded corruption (bit flip, byte splice, or truncation) to
/// `bytes`. Returns `None` when the corruption was a no-op.
fn corrupt(bytes: &[u8], rng: &mut StdRng) -> Option<Vec<u8>> {
    let mut out = bytes.to_vec();
    match rng.random_range(0..3u32) {
        0 => {
            let i = rng.random_range(0..out.len());
            let bit = 1u8 << rng.random_range(0..8u32);
            out[i] ^= bit;
        }
        1 => {
            let i = rng.random_range(0..out.len());
            let b = rng.random_range(0..=255u32) as u8;
            if out[i] == b {
                return None;
            }
            out[i] = b;
        }
        _ => {
            out.truncate(rng.random_range(0..out.len()));
        }
    }
    Some(out)
}

#[test]
fn fuzzed_param_store_and_optimizer_bytes_never_panic() {
    let (store, adam) = trained_store_and_adam();
    let store_bytes = store.to_bytes();
    let adam_bytes = adam.to_bytes();
    let mut rng = StdRng::seed_from_u64(0xF0CC);
    let mut store_rejected = 0u32;
    for round in 0..400 {
        let Some(bad) = corrupt(&store_bytes, &mut rng) else {
            continue;
        };
        // Either the CRC catches it (the common case) or — for flips in
        // the trailing CRC's own "don't care" positions — parsing must
        // still never panic.
        if ParamStore::from_bytes(&bad).is_err() {
            store_rejected += 1;
        }
        let Some(bad) = corrupt(&adam_bytes, &mut rng) else {
            continue;
        };
        let _ = Adam::from_bytes(&bad);
        let _ = round;
    }
    assert!(
        store_rejected > 350,
        "only {store_rejected}/400 corruptions rejected — CRC not doing its job"
    );
}

#[test]
fn fuzzed_model_bytes_never_panic() {
    let ds = DomainSpec::new(Domain::Beer, Scale::Tiny).generate(13);
    let mut config = PipelineConfig::fast();
    config.seed = 13;
    let pipeline = Pipeline::fit(&ds, &config).unwrap();
    let bytes = pipeline.repr().to_bytes();
    let mut rng = StdRng::seed_from_u64(0xAB5E);
    let mut rejected = 0u32;
    for _ in 0..200 {
        let Some(bad) = corrupt(&bytes, &mut rng) else {
            continue;
        };
        if ReprModel::from_bytes(&bad).is_err() {
            rejected += 1;
        }
    }
    assert!(rejected > 170, "only {rejected}/200 corruptions rejected");
}

#[test]
fn fuzzed_checkpoint_files_are_rejected_not_loaded() {
    let dir = std::env::temp_dir().join(format!("vaer-ckpt-fuzz-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = CheckpointStore::open(&dir, "fuzz").unwrap();
    let payload: Vec<u8> = (0u16..512).map(|i| (i % 251) as u8).collect();
    store.write(1, &payload).unwrap();
    let path = dir.join("fuzz-00000001.ckpt");
    let good = std::fs::read(&path).unwrap();
    let mut rng = StdRng::seed_from_u64(0xC0DE);
    for _ in 0..200 {
        let Some(bad) = corrupt(&good, &mut rng) else {
            continue;
        };
        std::fs::write(&path, &bad).unwrap();
        // Corruption must never surface a *different* payload.
        if let Ok(p) = store.read(1) {
            assert_eq!(p, payload, "corrupt checkpoint decoded to wrong payload");
        }
        // And the newest-valid fallback must never panic either.
        let _ = store.read_latest();
    }
    let _ = std::fs::remove_dir_all(&dir);
}
