//! Integration tests of persistence: representation-model save/load and
//! CSV round-trips of generated benchmark tables.

use vaer::core::pipeline::{Pipeline, PipelineConfig};
use vaer::core::repr::ReprModel;
use vaer::data::csv::{from_csv, to_csv};
use vaer::data::domains::{Domain, DomainSpec, Scale};

#[test]
fn repr_model_survives_disk_round_trip() {
    let ds = DomainSpec::new(Domain::Beer, Scale::Tiny).generate(8);
    let mut config = PipelineConfig::fast();
    config.seed = 8;
    let pipeline = Pipeline::fit(&ds, &config).unwrap();
    let bytes = pipeline.repr().to_bytes();
    let restored = ReprModel::from_bytes(&bytes).unwrap();
    // Encodings must be bit-identical.
    let (irs_a, _) = pipeline.ir_tables();
    let orig = pipeline.repr().encode(&irs_a.irs);
    let back = restored.encode(&irs_a.irs);
    assert_eq!(orig.len(), back.len());
    for (a, b) in orig.iter().zip(back.iter()) {
        assert_eq!(a.mu, b.mu);
        assert_eq!(a.sigma, b.sigma);
    }
}

#[test]
fn generated_tables_round_trip_through_csv() {
    for domain in [Domain::Restaurants, Domain::Software, Domain::Crm] {
        let ds = DomainSpec::new(domain, Scale::Tiny).generate(12);
        for table in [&ds.table_a, &ds.table_b] {
            let csv = to_csv(table);
            let back = from_csv(&table.schema.name, &csv).unwrap();
            assert_eq!(&back, table, "{domain:?}/{}", table.schema.name);
        }
    }
}

#[test]
fn corrupted_model_bytes_are_rejected() {
    let ds = DomainSpec::new(Domain::Beer, Scale::Tiny).generate(9);
    let mut config = PipelineConfig::fast();
    config.seed = 9;
    let pipeline = Pipeline::fit(&ds, &config).unwrap();
    let mut bytes = pipeline.repr().to_bytes();
    // Flip the magic.
    bytes[0] ^= 0xFF;
    assert!(ReprModel::from_bytes(&bytes).is_err());
    // Truncate the payload.
    let mut short = pipeline.repr().to_bytes();
    short.truncate(short.len() / 2);
    assert!(ReprModel::from_bytes(&short).is_err());
}
