//! Quantized-inference parity gate (DESIGN.md §13).
//!
//! The int8 fast lane is only allowed to exist because these tests hold
//! it against the exact f32 path: per-candidate probabilities within a
//! small ε on every generated domain, end-to-end link F1 within 0.01,
//! per-`(k, precision)` score memos that never mix lanes, a silent (but
//! reported) fall-back to f32 when no quantized twin was calibrated, and
//! bit-identity of the fused f32 Score stage against the unfused
//! full-matrix construction.

use vaer::core::exec::{FusedScoreStage, Stage, SCORE_BLOCK};
use vaer::core::latent;
use vaer::core::pipeline::{Pipeline, PipelineConfig, ScorePrecision};
use vaer::core::resilience::RunBudget;
use vaer::data::domains::{Domain, DomainSpec, Scale};

/// Per-candidate probability tolerance of the int8 lane. Weights carry
/// per-channel scales but activations share one calibrated scale per
/// layer, so a borderline logit can move by a few centiprobabilities at
/// the sigmoid's steepest point (worst observed across the gated
/// domains: ~0.06).
const EPSILON: f32 = 0.08;

fn fast_config(seed: u64) -> PipelineConfig {
    let mut c = PipelineConfig::fast();
    c.seed = seed;
    c
}

/// Link F1 against the dataset's full duplicate ground truth.
fn link_f1(links: &[(usize, usize, f32)], duplicates: &[(usize, usize)]) -> f32 {
    let truth: std::collections::HashSet<(usize, usize)> = duplicates.iter().copied().collect();
    let tp = links
        .iter()
        .filter(|&&(a, b, _)| truth.contains(&(a, b)))
        .count();
    let fp = links.len() - tp;
    let fn_ = duplicates.len() - tp;
    if tp == 0 {
        return 0.0;
    }
    2.0 * tp as f32 / (2.0 * tp as f32 + fp as f32 + fn_ as f32)
}

#[test]
fn int8_scores_match_f32_within_epsilon_on_every_domain() {
    for (domain, seed) in [
        (Domain::Restaurants, 41),
        (Domain::Beer, 42),
        (Domain::Crm, 43),
    ] {
        let ds = DomainSpec::new(domain, Scale::Tiny).generate(seed);
        let p = Pipeline::fit(&ds, &fast_config(seed)).unwrap();
        assert!(p.matcher().encoder_frozen(), "{domain:?}: must stay frozen");
        assert!(
            p.quantized_matcher().is_some(),
            "{domain:?}: frozen fit must calibrate an int8 twin"
        );
        let pairs: Vec<(usize, usize)> = p
            .blocking_candidates(5)
            .iter()
            .map(|c| (c.left, c.right))
            .collect();
        let exact = FusedScoreStage {
            pipeline: &p,
            precision: ScorePrecision::F32,
            budget: RunBudget::unlimited(),
        }
        .run(pairs.clone())
        .unwrap();
        let fast = FusedScoreStage {
            pipeline: &p,
            precision: ScorePrecision::Int8,
            budget: RunBudget::unlimited(),
        }
        .run(pairs)
        .unwrap();
        assert_eq!(exact.len(), fast.len());
        for (i, (a, b)) in exact.iter().zip(&fast).enumerate() {
            assert!(
                (a - b).abs() <= EPSILON,
                "{domain:?} pair {i}: f32 {a} vs int8 {b}"
            );
        }
        // End-to-end: the quantized resolution's link quality tracks f32.
        let mut plan = p.resolve_plan();
        let f32_res = plan
            .run_with_precision(5, 0.5, ScorePrecision::F32)
            .unwrap();
        let int8_res = plan
            .run_with_precision(5, 0.5, ScorePrecision::Int8)
            .unwrap();
        assert_eq!(int8_res.precision, ScorePrecision::Int8);
        let delta = (link_f1(&f32_res.links, &ds.duplicates)
            - link_f1(&int8_res.links, &ds.duplicates))
        .abs();
        assert!(delta <= 0.01, "{domain:?}: link F1 delta {delta}");
    }
}

#[test]
fn score_memos_never_mix_precisions() {
    let ds = DomainSpec::new(Domain::Restaurants, Scale::Tiny).generate(17);
    let p = Pipeline::fit(&ds, &fast_config(17)).unwrap();
    let mut plan = p.resolve_plan();
    let first = plan
        .run_with_precision(5, 0.5, ScorePrecision::F32)
        .unwrap();
    assert!(!first.reused);
    // Same k, other precision: the f32 memo must NOT satisfy an int8 run.
    let int8 = plan
        .run_with_precision(5, 0.5, ScorePrecision::Int8)
        .unwrap();
    assert!(!int8.reused, "int8 run reused f32 scores");
    // Now both lanes are memoised and reusable independently.
    let int8_again = plan
        .run_with_precision(5, 0.8, ScorePrecision::Int8)
        .unwrap();
    assert!(int8_again.reused);
    let f32_again = plan
        .run_with_precision(5, 0.8, ScorePrecision::F32)
        .unwrap();
    assert!(f32_again.reused);
    // The f32 memo came through the int8 detour unpolluted: a threshold
    // re-run still matches a fresh f32 resolution exactly.
    assert_eq!(f32_again.links, p.resolve(5, 0.8));
}

#[test]
fn config_precision_drives_resolution_and_reports_back() {
    let ds = DomainSpec::new(Domain::Beer, Scale::Tiny).generate(23);
    let mut config = fast_config(23);
    config.score_precision = ScorePrecision::Int8;
    let p = Pipeline::fit(&ds, &config).unwrap();
    let mut plan = p.resolve_plan();
    let res = plan.run(5, 0.5).unwrap();
    assert_eq!(res.precision, ScorePrecision::Int8);
    // `resolve` goes through the same configured lane.
    assert_eq!(p.resolve(5, 0.5), res.links);
}

#[test]
fn int8_request_falls_back_to_f32_when_fine_tuned() {
    let ds = DomainSpec::new(Domain::Beer, Scale::Tiny).generate(29);
    let mut config = fast_config(29);
    // Force fine-tuning even on tiny label budgets: no latent cache, no
    // quantized twin.
    config.matcher.fine_tune_min_pairs = 0;
    config.score_precision = ScorePrecision::Int8;
    let p = Pipeline::fit(&ds, &config).unwrap();
    assert!(!p.matcher().encoder_frozen());
    assert!(p.quantized_matcher().is_none());
    let mut plan = p.resolve_plan();
    let res = plan.run(5, 0.5).unwrap();
    assert_eq!(
        res.precision,
        ScorePrecision::F32,
        "no twin: must fall back"
    );
    // The fallback is the exact staged path: bit-identical to the
    // pre-refactor monolith oracle.
    assert_eq!(res.links, p.resolve_reference(5, 0.5));
}

#[test]
fn fused_f32_scoring_is_bit_identical_to_the_full_matrix_pass() {
    let ds = DomainSpec::new(Domain::Restaurants, Scale::Tiny).generate(31);
    let p = Pipeline::fit(&ds, &fast_config(31)).unwrap();
    // More pairs than one SCORE_BLOCK so the chunk seam is exercised,
    // including a ragged tail.
    let (len_a, len_b) = (ds.table_a.len(), ds.table_b.len());
    let n = 2 * SCORE_BLOCK + 137;
    let pairs: Vec<(usize, usize)> = (0..n)
        .map(|i| ((i * 7) % len_a, (i * 13) % len_b))
        .collect();
    let fused = FusedScoreStage {
        pipeline: &p,
        precision: ScorePrecision::F32,
        budget: RunBudget::unlimited(),
    }
    .run(pairs.clone())
    .unwrap();
    let (lat_a, lat_b) = p.latents();
    let features = latent::distance_features(p.config().matcher.distance, lat_a, lat_b, &pairs);
    let full = p.matcher().predict_features(&features);
    assert_eq!(fused.len(), full.len());
    for (i, (a, b)) in fused.iter().zip(&full).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "pair {i}: fused {a} vs full {b}");
    }
}

#[test]
fn predict_features_sanitizes_non_finite_rows() {
    // Regression: a NaN/inf cell in a feature row used to propagate
    // straight through the MLP and surface as a NaN probability.
    let ds = DomainSpec::new(Domain::Beer, Scale::Tiny).generate(37);
    let p = Pipeline::fit(&ds, &fast_config(37)).unwrap();
    let pairs: Vec<(usize, usize)> = ds
        .test_pairs
        .pairs
        .iter()
        .map(|pr| (pr.left, pr.right))
        .collect();
    let (lat_a, lat_b) = p.latents();
    let mut features = latent::distance_features(p.config().matcher.distance, lat_a, lat_b, &pairs);
    assert!(features.rows() >= 3, "need rows to poison");
    features.row_mut(0)[0] = f32::NAN;
    features.row_mut(1)[1] = f32::INFINITY;
    features.row_mut(2)[0] = f32::NEG_INFINITY;
    let probs = p.matcher().predict_features(&features);
    assert!(
        probs.iter().all(|pr| pr.is_finite()),
        "non-finite probability leaked: {probs:?}"
    );
    // A poisoned cell scores exactly like the same cell zeroed.
    let mut zeroed = features.clone();
    zeroed.row_mut(0)[0] = 0.0;
    zeroed.row_mut(1)[1] = 0.0;
    zeroed.row_mut(2)[0] = 0.0;
    assert_eq!(probs, p.matcher().predict_features(&zeroed));
}
