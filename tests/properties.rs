//! Property-style tests of the core invariants: metric properties of the
//! distances, probability bounds, text-processing idempotence,
//! serialisation round-trips, and index correctness.
//!
//! Random cases are driven by a seeded RNG loop (no external
//! property-testing dependency); failures print the case index so they
//! replay deterministically.

use rand::{rngs::StdRng, RngExt, SeedableRng};
use vaer::data::{LabeledPair, PairSet};
use vaer::index::{BruteForceKnn, E2Lsh, KnnIndex};
use vaer::linalg::Matrix;
use vaer::nn::ParamStore;
use vaer::stats::entropy::binary_entropy;
use vaer::stats::gaussian::{kl_to_standard, mahalanobis_squared, w2_squared, DiagGaussian};
use vaer::stats::kde::Kde;
use vaer::stats::metrics::PrF1;
use vaer::text::{normalize, tfidf, Corpus};

fn random_gaussian(rng: &mut StdRng, dims: usize) -> DiagGaussian {
    let mu = (0..dims)
        .map(|_| rng.random_range(-10.0f32..10.0))
        .collect();
    let sigma = (0..dims).map(|_| rng.random_range(0.01f32..5.0)).collect();
    DiagGaussian::new(mu, sigma)
}

/// A printable-ASCII string of random length in `[lo, hi)`.
fn random_string(rng: &mut StdRng, lo: usize, hi: usize) -> String {
    let len = rng.random_range(lo..hi.max(lo + 1));
    (0..len)
        .map(|_| {
            // Mix letters, digits, punctuation, and whitespace.
            match rng.random_range(0..10u32) {
                0..=5 => rng.random_range(b'a'..=b'z') as char,
                6 => rng.random_range(b'A'..=b'Z') as char,
                7 => rng.random_range(b'0'..=b'9') as char,
                8 => ' ',
                _ => ['.', ',', '-', '_', '/', '!'][rng.random_range(0..6usize)],
            }
        })
        .collect()
}

/// A lowercase word of 1..=8 characters.
fn random_word(rng: &mut StdRng) -> String {
    (0..rng.random_range(1..=8usize))
        .map(|_| rng.random_range(b'a'..=b'z') as char)
        .collect()
}

#[test]
fn w2_is_a_metric_like_form() {
    let mut rng = StdRng::seed_from_u64(0x57A7);
    for case in 0..64 {
        let p = random_gaussian(&mut rng, 6);
        let q = random_gaussian(&mut rng, 6);
        // Non-negative, symmetric, zero iff identical parameters.
        let d_pq = w2_squared(&p, &q);
        let d_qp = w2_squared(&q, &p);
        assert!(d_pq >= 0.0, "case {case}");
        assert!(
            (d_pq - d_qp).abs() <= 1e-3 * (1.0 + d_pq.abs()),
            "case {case}"
        );
        assert!(w2_squared(&p, &p) == 0.0, "case {case}");
    }
}

#[test]
fn w2_triangle_inequality_on_sqrt() {
    let mut rng = StdRng::seed_from_u64(0x7214);
    for case in 0..64 {
        let p = random_gaussian(&mut rng, 4);
        let q = random_gaussian(&mut rng, 4);
        let r = random_gaussian(&mut rng, 4);
        // W2 (not squared) is a true metric on diagonal Gaussians.
        let pq = w2_squared(&p, &q).sqrt();
        let qr = w2_squared(&q, &r).sqrt();
        let pr = w2_squared(&p, &r).sqrt();
        assert!(pr <= pq + qr + 1e-3 * (1.0 + pr), "case {case}");
    }
}

#[test]
fn mahalanobis_non_negative_and_symmetric() {
    let mut rng = StdRng::seed_from_u64(0x3A3A);
    for case in 0..64 {
        let p = random_gaussian(&mut rng, 5);
        let q = random_gaussian(&mut rng, 5);
        let d = mahalanobis_squared(&p, &q);
        assert!(d >= 0.0, "case {case}");
        assert!(
            (d - mahalanobis_squared(&q, &p)).abs() <= 1e-3 * (1.0 + d),
            "case {case}"
        );
    }
}

#[test]
fn kl_to_standard_is_non_negative() {
    let mut rng = StdRng::seed_from_u64(0x1B1B);
    for case in 0..64 {
        let p = random_gaussian(&mut rng, 5);
        assert!(kl_to_standard(&p) >= -1e-4, "case {case}");
    }
}

#[test]
fn entropy_bounded_by_ln2() {
    let mut rng = StdRng::seed_from_u64(0xE272);
    for case in 0..256 {
        let p = if case == 0 {
            0.0
        } else if case == 1 {
            1.0
        } else {
            rng.random_range(0.0f32..1.0)
        };
        let h = binary_entropy(p);
        assert!(h >= 0.0, "case {case}");
        assert!(h <= std::f32::consts::LN_2 + 1e-6, "case {case}");
    }
}

#[test]
fn kde_density_non_negative() {
    let mut rng = StdRng::seed_from_u64(0xDE11);
    for case in 0..64 {
        let n = rng.random_range(1..50usize);
        let samples: Vec<f32> = (0..n).map(|_| rng.random_range(-100.0f32..100.0)).collect();
        let x = rng.random_range(-200.0f32..200.0);
        let kde = Kde::fit(&samples).unwrap();
        assert!(kde.density(x) >= 0.0, "case {case}");
        assert!(kde.density(x).is_finite(), "case {case}");
        let r = kde.relative_density(x);
        assert!((0.0..=1.0).contains(&r), "case {case}");
    }
}

#[test]
fn normalize_is_idempotent() {
    let mut rng = StdRng::seed_from_u64(0x1DE4);
    for case in 0..128 {
        let raw = random_string(&mut rng, 0, 60);
        let once = normalize(&raw);
        let twice = normalize(&once);
        assert_eq!(once, twice, "case {case}: raw {raw:?}");
    }
}

#[test]
fn tfidf_vectors_unit_norm_or_empty() {
    let mut rng = StdRng::seed_from_u64(0x7F1D);
    for case in 0..32 {
        let sentences: Vec<String> = (0..rng.random_range(1..12usize))
            .map(|_| {
                (0..rng.random_range(1..=6usize))
                    .map(|_| random_word(&mut rng))
                    .collect::<Vec<_>>()
                    .join(" ")
            })
            .collect();
        let corpus = Corpus::build(&sentences, 1);
        let (_, vectors) = tfidf(&corpus);
        for v in vectors {
            if v.is_empty() {
                continue;
            }
            let norm: f32 = v.iter().map(|&(_, w)| w * w).sum::<f32>().sqrt();
            assert!((norm - 1.0).abs() < 1e-4, "case {case}: norm {norm}");
        }
    }
}

#[test]
fn prf1_counts_are_consistent() {
    let mut rng = StdRng::seed_from_u64(0xF1F1);
    for case in 0..64 {
        let n = rng.random_range(0..64usize);
        let predicted: Vec<bool> = (0..n).map(|_| rng.random_bool(0.5)).collect();
        let actual: Vec<bool> = (0..n).map(|_| rng.random_bool(0.5)).collect();
        let m = PrF1::from_labels(&predicted, &actual);
        assert_eq!(m.tp + m.fp + m.fn_ + m.tn, n, "case {case}");
        assert!((0.0..=1.0).contains(&m.precision), "case {case}");
        assert!((0.0..=1.0).contains(&m.recall), "case {case}");
        assert!((0.0..=1.0).contains(&m.f1), "case {case}");
        assert!(m.f1 <= m.precision.max(m.recall) + 1e-6, "case {case}");
    }
}

#[test]
fn param_store_bytes_round_trip() {
    let mut rng = StdRng::seed_from_u64(0x5704);
    for case in 0..32 {
        let mut store = ParamStore::new();
        for i in 0..rng.random_range(1..4usize) {
            let r = rng.random_range(1..5usize);
            let c = rng.random_range(1..5usize);
            let data: Vec<f32> = (0..r * c)
                .map(|_| rng.random_range(-100.0f32..100.0))
                .collect();
            store.add(format!("p{i}"), Matrix::from_vec(r, c, data));
        }
        let back = ParamStore::from_bytes(&store.to_bytes()).unwrap();
        assert_eq!(back.len(), store.len(), "case {case}");
        for (_, name, value) in store.iter() {
            let bid = back.find(name).unwrap();
            assert_eq!(back.get(bid), value, "case {case}: param {name}");
        }
    }
}

#[test]
fn lsh_knn_is_subset_quality_of_brute_force() {
    let mut rng = StdRng::seed_from_u64(0x15A1);
    for case in 0..24 {
        let seed = rng.random_range(0..1000u64);
        let n = rng.random_range(20..60usize);
        // LSH's top-1 neighbour distance can never beat brute force, and
        // with the fallback it must return k results.
        let mut xrng = vaer::linalg::XorShiftRng::new(seed);
        let points: Vec<Vec<f32>> = (0..n)
            .map(|_| (0..8).map(|_| xrng.gaussian()).collect())
            .collect();
        let brute = BruteForceKnn::build(points.clone());
        let lsh = E2Lsh::build_calibrated(points.clone(), seed);
        let q = &points[0];
        let bf = brute.knn(q, 3);
        let ls = lsh.knn(q, 3);
        assert_eq!(ls.len(), 3.min(n), "case {case}");
        assert!(ls[0].distance + 1e-6 >= bf[0].distance, "case {case}");
        // Self-query must find itself at distance 0.
        assert!(ls[0].distance <= 1e-6, "case {case}");
    }
}

#[test]
fn pair_set_validation_matches_bounds() {
    use vaer::data::{Schema, Table};
    let mut rng = StdRng::seed_from_u64(0xB02D);
    for case in 0..48 {
        let len_a = rng.random_range(1..30usize);
        let len_b = rng.random_range(1..30usize);
        let pairs: Vec<(usize, usize, bool)> = (0..rng.random_range(0..20usize))
            .map(|_| {
                (
                    rng.random_range(0..30usize),
                    rng.random_range(0..30usize),
                    rng.random_bool(0.5),
                )
            })
            .collect();
        let mut a = Table::new(Schema::new("a", &["x"]));
        for i in 0..len_a {
            a.push(vec![format!("{i}")]);
        }
        let mut b = Table::new(Schema::new("b", &["x"]));
        for i in 0..len_b {
            b.push(vec![format!("{i}")]);
        }
        let set: PairSet = pairs
            .iter()
            .map(|&(l, r, m)| LabeledPair {
                left: l,
                right: r,
                is_match: m,
            })
            .collect();
        let valid = set.pairs.iter().all(|p| p.left < len_a && p.right < len_b);
        assert_eq!(set.validate(&a, &b).is_ok(), valid, "case {case}");
    }
}
