//! Property-based tests (proptest) of the core invariants: metric
//! properties of the distances, probability bounds, text-processing
//! idempotence, serialisation round-trips, and index correctness.

use proptest::prelude::*;
use vaer::data::{LabeledPair, PairSet};
use vaer::index::{BruteForceKnn, E2Lsh, KnnIndex};
use vaer::linalg::Matrix;
use vaer::nn::ParamStore;
use vaer::stats::entropy::binary_entropy;
use vaer::stats::gaussian::{kl_to_standard, mahalanobis_squared, w2_squared, DiagGaussian};
use vaer::stats::kde::Kde;
use vaer::stats::metrics::PrF1;
use vaer::text::{normalize, tfidf, Corpus};

fn gaussian_strategy(dims: usize) -> impl Strategy<Value = DiagGaussian> {
    (
        proptest::collection::vec(-10.0f32..10.0, dims),
        proptest::collection::vec(0.01f32..5.0, dims),
    )
        .prop_map(|(mu, sigma)| DiagGaussian::new(mu, sigma))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn w2_is_a_metric_like_form(p in gaussian_strategy(6), q in gaussian_strategy(6)) {
        // Non-negative, symmetric, zero iff identical parameters.
        let d_pq = w2_squared(&p, &q);
        let d_qp = w2_squared(&q, &p);
        prop_assert!(d_pq >= 0.0);
        prop_assert!((d_pq - d_qp).abs() <= 1e-3 * (1.0 + d_pq.abs()));
        prop_assert!(w2_squared(&p, &p) == 0.0);
    }

    #[test]
    fn w2_triangle_inequality_on_sqrt(
        p in gaussian_strategy(4),
        q in gaussian_strategy(4),
        r in gaussian_strategy(4),
    ) {
        // W2 (not squared) is a true metric on diagonal Gaussians.
        let pq = w2_squared(&p, &q).sqrt();
        let qr = w2_squared(&q, &r).sqrt();
        let pr = w2_squared(&p, &r).sqrt();
        prop_assert!(pr <= pq + qr + 1e-3 * (1.0 + pr));
    }

    #[test]
    fn mahalanobis_non_negative_and_symmetric(p in gaussian_strategy(5), q in gaussian_strategy(5)) {
        let d = mahalanobis_squared(&p, &q);
        prop_assert!(d >= 0.0);
        prop_assert!((d - mahalanobis_squared(&q, &p)).abs() <= 1e-3 * (1.0 + d));
    }

    #[test]
    fn kl_to_standard_is_non_negative(p in gaussian_strategy(5)) {
        prop_assert!(kl_to_standard(&p) >= -1e-4);
    }

    #[test]
    fn entropy_bounded_by_ln2(p in 0.0f32..=1.0) {
        let h = binary_entropy(p);
        prop_assert!(h >= 0.0);
        prop_assert!(h <= std::f32::consts::LN_2 + 1e-6);
    }

    #[test]
    fn kde_density_non_negative(samples in proptest::collection::vec(-100.0f32..100.0, 1..50),
                                x in -200.0f32..200.0) {
        let kde = Kde::fit(&samples).unwrap();
        prop_assert!(kde.density(x) >= 0.0);
        prop_assert!(kde.density(x).is_finite());
        let r = kde.relative_density(x);
        prop_assert!((0.0..=1.0).contains(&r));
    }

    #[test]
    fn normalize_is_idempotent(raw in ".{0,60}") {
        let once = normalize(&raw);
        let twice = normalize(&once);
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn tfidf_vectors_unit_norm_or_empty(
        sentences in proptest::collection::vec("[a-z]{1,8}( [a-z]{1,8}){0,5}", 1..12)
    ) {
        let corpus = Corpus::build(&sentences, 1);
        let (_, vectors) = tfidf(&corpus);
        for v in vectors {
            if v.is_empty() {
                continue;
            }
            let norm: f32 = v.iter().map(|&(_, w)| w * w).sum::<f32>().sqrt();
            prop_assert!((norm - 1.0).abs() < 1e-4, "norm {}", norm);
        }
    }

    #[test]
    fn prf1_counts_are_consistent(labels in proptest::collection::vec(any::<(bool, bool)>(), 0..64)) {
        let predicted: Vec<bool> = labels.iter().map(|&(p, _)| p).collect();
        let actual: Vec<bool> = labels.iter().map(|&(_, a)| a).collect();
        let m = PrF1::from_labels(&predicted, &actual);
        prop_assert_eq!(m.tp + m.fp + m.fn_ + m.tn, labels.len());
        prop_assert!((0.0..=1.0).contains(&m.precision));
        prop_assert!((0.0..=1.0).contains(&m.recall));
        prop_assert!((0.0..=1.0).contains(&m.f1));
        prop_assert!(m.f1 <= m.precision.max(m.recall) + 1e-6);
        prop_assert!(m.f1 + 1e-6 >= m.precision.min(m.recall) * 0.0); // trivially holds; F1 ≥ 0
    }

    #[test]
    fn param_store_bytes_round_trip(
        dims in proptest::collection::vec((1usize..5, 1usize..5), 1..4),
        values in proptest::collection::vec(-100.0f32..100.0, 16),
    ) {
        let mut store = ParamStore::new();
        let mut vi = 0;
        for (i, &(r, c)) in dims.iter().enumerate() {
            let data: Vec<f32> =
                (0..r * c).map(|k| values[(vi + k) % values.len()]).collect();
            vi += r * c;
            store.add(format!("p{i}"), Matrix::from_vec(r, c, data));
        }
        let back = ParamStore::from_bytes(&store.to_bytes()).unwrap();
        prop_assert_eq!(back.len(), store.len());
        for (id, name, value) in store.iter() {
            let bid = back.find(name).unwrap();
            prop_assert_eq!(back.get(bid), value);
            let _ = id;
        }
    }

    #[test]
    fn lsh_knn_is_subset_quality_of_brute_force(
        seed in 0u64..1000,
        n in 20usize..60,
    ) {
        // LSH's top-1 neighbour distance can never beat brute force, and
        // with the fallback it must return k results.
        let mut rng = vaer::linalg::XorShiftRng::new(seed);
        let points: Vec<Vec<f32>> =
            (0..n).map(|_| (0..8).map(|_| rng.gaussian()).collect()).collect();
        let brute = BruteForceKnn::build(points.clone());
        let lsh = E2Lsh::build_calibrated(points.clone(), seed);
        let q = &points[0];
        let bf = brute.knn(q, 3);
        let ls = lsh.knn(q, 3);
        prop_assert_eq!(ls.len(), 3.min(n));
        prop_assert!(ls[0].distance + 1e-6 >= bf[0].distance);
        // Self-query must find itself at distance 0.
        prop_assert!(ls[0].distance <= 1e-6);
    }

    #[test]
    fn pair_set_validation_matches_bounds(
        pairs in proptest::collection::vec((0usize..30, 0usize..30, any::<bool>()), 0..20),
        len_a in 1usize..30,
        len_b in 1usize..30,
    ) {
        use vaer::data::{Schema, Table};
        let mut a = Table::new(Schema::new("a", &["x"]));
        for i in 0..len_a {
            a.push(vec![format!("{i}")]);
        }
        let mut b = Table::new(Schema::new("b", &["x"]));
        for i in 0..len_b {
            b.push(vec![format!("{i}")]);
        }
        let set: PairSet = pairs
            .iter()
            .map(|&(l, r, m)| LabeledPair { left: l, right: r, is_match: m })
            .collect();
        let valid = set.pairs.iter().all(|p| p.left < len_a && p.right < len_b);
        prop_assert_eq!(set.validate(&a, &b).is_ok(), valid);
    }
}
