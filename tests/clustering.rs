//! Integration tests of the deployment tail: resolve → cluster → report.

use vaer::core::cluster::{cluster_links, pairwise_cluster_metrics, RowId};
use vaer::core::pipeline::{Pipeline, PipelineConfig};
use vaer::data::domains::{Domain, DomainSpec, Scale};

#[test]
fn resolve_then_cluster_produces_sound_entities() {
    let ds = DomainSpec::new(Domain::Restaurants, Scale::Tiny).generate(19);
    let mut config = PipelineConfig::fast();
    config.seed = 19;
    let pipeline = Pipeline::fit(&ds, &config).unwrap();
    let links: Vec<(usize, usize)> = pipeline
        .resolve(5, 0.5)
        .into_iter()
        .map(|(a, b, _)| (a, b))
        .collect();
    assert!(!links.is_empty(), "no links resolved");
    let clusters = cluster_links(&links, ds.table_a.len(), ds.table_b.len(), false).unwrap();
    assert!(!clusters.is_empty());
    // Every cluster that was produced references valid rows and contains
    // at least two members (singletons were excluded).
    for c in &clusters {
        assert!(c.len() >= 2);
        for m in &c.members {
            match *m {
                RowId::A(i) => assert!(i < ds.table_a.len()),
                RowId::B(i) => assert!(i < ds.table_b.len()),
            }
        }
    }
    // Cluster-level quality should be reasonable on this clean domain.
    let metrics = pairwise_cluster_metrics(
        &clusters,
        &ds.duplicates,
        ds.table_a.len(),
        ds.table_b.len(),
    )
    .unwrap();
    assert!(metrics.f1 > 0.5, "cluster F1 {metrics}");
}

#[test]
fn calibrated_threshold_is_usable_end_to_end() {
    let ds = DomainSpec::new(Domain::Beer, Scale::Tiny).generate(23);
    let mut config = PipelineConfig::fast();
    config.seed = 23;
    let pipeline = Pipeline::fit(&ds, &config).unwrap();
    // Calibrate on the training pairs, apply to resolve().
    let (irs_a, irs_b) = pipeline.ir_tables();
    let train_examples = vaer::core::matcher::PairExamples::build(irs_a, irs_b, &ds.train_pairs);
    let (threshold, f1_at_t) = pipeline.matcher().calibrate_threshold(&train_examples);
    assert!(f1_at_t > 0.0);
    let links = pipeline.resolve(5, threshold.clamp(0.05, 0.95));
    // Links at the calibrated threshold should skew correct.
    let truth: std::collections::HashSet<(usize, usize)> = ds.duplicates.iter().copied().collect();
    let correct = links
        .iter()
        .filter(|&&(a, b, _)| truth.contains(&(a, b)))
        .count();
    assert!(
        correct * 2 >= links.len(),
        "fewer than half of {} calibrated links are correct",
        links.len()
    );
}

#[test]
fn attribute_importance_sums_to_one_on_real_pipeline() {
    let ds = DomainSpec::new(Domain::Crm, Scale::Tiny).generate(29);
    let mut config = PipelineConfig::fast();
    config.seed = 29;
    let pipeline = Pipeline::fit(&ds, &config).unwrap();
    let importance = pipeline.matcher().attribute_importance();
    assert_eq!(importance.len(), ds.table_a.schema.arity());
    assert!((importance.iter().sum::<f32>() - 1.0).abs() < 1e-4);
    assert!(importance.iter().all(|&x| x >= 0.0));
}
