//! Executor-vs-monolith equivalence: the staged `ResolvePlan` behind
//! `Pipeline::resolve` must reproduce the pre-refactor single-function
//! resolution path bit-for-bit. `resolve_reference` preserves that
//! monolith verbatim as the oracle; every comparison here is exact f32
//! equality, not tolerance-based.

use vaer::core::pipeline::{Pipeline, PipelineConfig};
use vaer::data::domains::{Domain, DomainSpec, Scale};
use vaer::data::{LabeledPair, PairSet};

fn fast(seed: u64) -> PipelineConfig {
    let mut c = PipelineConfig::fast();
    c.seed = seed;
    c
}

#[test]
fn staged_resolve_matches_monolith_across_domains_and_seeds() {
    for (domain, seed) in [
        (Domain::Restaurants, 41),
        (Domain::Beer, 42),
        (Domain::Crm, 43),
    ] {
        let ds = DomainSpec::new(domain, Scale::Tiny).generate(seed);
        let pipeline = Pipeline::fit(&ds, &fast(seed)).unwrap();
        for (k, threshold) in [(5usize, 0.5f32), (10, 0.7), (3, 0.9)] {
            let staged = pipeline.resolve(k, threshold);
            let monolith = pipeline.resolve_reference(k, threshold);
            assert_eq!(
                staged, monolith,
                "{domain:?} seed {seed} k {k} threshold {threshold}"
            );
        }
    }
}

#[test]
fn staged_resolve_matches_monolith_with_fine_tuned_encoder() {
    // Force the non-frozen encoder path so the Encode stage takes the
    // raw pair-example branch rather than the latent-cache fast path.
    let ds = DomainSpec::new(Domain::Restaurants, Scale::Tiny).generate(7);
    let mut config = fast(7);
    config.matcher.fine_tune_encoder = true;
    config.matcher.fine_tune_min_pairs = 1;
    let pipeline = Pipeline::fit(&ds, &config).unwrap();
    for (k, threshold) in [(5usize, 0.5f32), (8, 0.8)] {
        assert_eq!(
            pipeline.resolve(k, threshold),
            pipeline.resolve_reference(k, threshold),
            "fine-tuned path diverged at k {k} threshold {threshold}"
        );
    }
}

#[test]
fn resolve_probabilities_agree_with_predict() {
    // Scores produced inside the plan's Score stage must be the same
    // numbers `predict` returns for the linked pairs — one scoring
    // path, not two.
    let ds = DomainSpec::new(Domain::Beer, Scale::Tiny).generate(11);
    let pipeline = Pipeline::fit(&ds, &fast(11)).unwrap();
    let links = pipeline.resolve(5, 0.3);
    assert!(!links.is_empty(), "need links for the cross-check");
    let pairs = PairSet {
        pairs: links
            .iter()
            .map(|&(a, b, _)| LabeledPair {
                left: a,
                right: b,
                is_match: false,
            })
            .collect(),
    };
    let probs = pipeline.predict(&pairs);
    for (link, prob) in links.iter().zip(&probs) {
        assert_eq!(link.2, *prob, "link {link:?} scored differently");
    }
}

#[test]
fn plan_rerun_with_new_threshold_matches_fresh_resolve() {
    let ds = DomainSpec::new(Domain::Crm, Scale::Tiny).generate(17);
    let pipeline = Pipeline::fit(&ds, &fast(17)).unwrap();
    let mut plan = pipeline.resolve_plan();
    let first = plan.run(5, 0.5).unwrap();
    assert!(!first.reused);
    let rerun = plan.run(5, 0.9).unwrap();
    assert!(
        rerun.reused,
        "same-k re-run must reuse blocked+scored artifacts"
    );
    assert_eq!(rerun.links, pipeline.resolve(5, 0.9));
    // A different k invalidates the cached candidates but not the plan.
    let wider = plan.run(9, 0.5).unwrap();
    assert!(!wider.reused);
    assert_eq!(wider.links, pipeline.resolve(9, 0.5));
}

#[test]
fn fit_and_resolve_are_deterministic_given_seed() {
    let ds = DomainSpec::new(Domain::Restaurants, Scale::Tiny).generate(23);
    let a = Pipeline::fit(&ds, &fast(23)).unwrap();
    let b = Pipeline::fit(&ds, &fast(23)).unwrap();
    assert_eq!(a.predict(&ds.test_pairs), b.predict(&ds.test_pairs));
    assert_eq!(a.resolve(5, 0.5), b.resolve(5, 0.5));
}
