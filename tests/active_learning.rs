//! Integration tests of the active-learning loop against the labelling
//! oracle: budget accounting, class coverage, and curve behaviour.

use vaer::core::active::{evaluate_matcher, ActiveConfig, ActiveLearner};
use vaer::core::entity::IrTable;
use vaer::core::matcher::{MatcherConfig, PairExamples};
use vaer::core::repr::{ReprConfig, ReprModel};
use vaer::data::domains::{Domain, DomainSpec, Scale};
use vaer::data::Dataset;
use vaer::embed::{fit_ir_model, IrKind};

struct Fixture {
    dataset: Dataset,
    irs_a: IrTable,
    irs_b: IrTable,
    repr: ReprModel,
}

fn fixture(domain: Domain, seed: u64) -> Fixture {
    let dataset = DomainSpec::new(domain, Scale::Tiny).generate(seed);
    let arity = dataset.table_a.schema.arity();
    let sentences = dataset.all_sentences();
    let ir_model = fit_ir_model(IrKind::Lsa, &sentences, &dataset.tables_raw(), 24, seed);
    let a: Vec<String> = dataset.table_a.sentences().map(str::to_owned).collect();
    let b: Vec<String> = dataset.table_b.sentences().map(str::to_owned).collect();
    let irs_a = IrTable::new(arity, ir_model.encode_batch(&a));
    let irs_b = IrTable::new(arity, ir_model.encode_batch(&b));
    let all = irs_a.irs.vconcat(&irs_b.irs);
    let (repr, _) = ReprModel::train(&all, &ReprConfig::fast(24)).unwrap();
    Fixture {
        dataset,
        irs_a,
        irs_b,
        repr,
    }
}

fn al_config(seed: u64) -> ActiveConfig {
    ActiveConfig {
        iterations: 5,
        matcher: MatcherConfig {
            epochs: 10,
            ..MatcherConfig::fast()
        },
        seed,
        ..ActiveConfig::default()
    }
}

#[test]
fn oracle_budget_is_respected() {
    let f = fixture(Domain::Restaurants, 1);
    let oracle = f.dataset.oracle();
    let mut learner = ActiveLearner::new(&f.repr, &f.irs_a, &f.irs_b, al_config(1));
    learner.run(&oracle, 25, None).unwrap();
    // Bootstrap verification is unbilled; iteration labels must stay
    // within budget + one final batch.
    assert!(
        oracle.queries_used() <= 25 + 10,
        "used {} labels for budget 25",
        oracle.queries_used()
    );
}

#[test]
fn labelled_set_contains_both_classes_after_bootstrap() {
    let f = fixture(Domain::Citations1, 2);
    let oracle = f.dataset.oracle();
    let mut learner = ActiveLearner::new(&f.repr, &f.irs_a, &f.irs_b, al_config(2));
    learner.run(&oracle, 20, None).unwrap();
    let labeled = learner.labeled();
    assert!(
        labeled.num_positive() > 0,
        "no positives after bootstrap+AL"
    );
    assert!(
        labeled.num_negative() > 0,
        "no negatives after bootstrap+AL"
    );
}

#[test]
fn history_labels_are_monotone() {
    let f = fixture(Domain::Beer, 3);
    let oracle = f.dataset.oracle();
    let mut learner = ActiveLearner::new(&f.repr, &f.irs_a, &f.irs_b, al_config(3));
    let test = PairExamples::build(&f.irs_a, &f.irs_b, &f.dataset.test_pairs);
    learner.run(&oracle, 30, Some(&test)).unwrap();
    let history = learner.history();
    assert!(!history.is_empty());
    for w in history.windows(2) {
        assert!(
            w[1].labels_used >= w[0].labels_used,
            "labels went backwards"
        );
    }
    assert!(history.iter().all(|c| c.test_f1.is_some()));
}

#[test]
fn al_matcher_is_usable() {
    let f = fixture(Domain::Crm, 4);
    let oracle = f.dataset.oracle();
    let mut learner = ActiveLearner::new(&f.repr, &f.irs_a, &f.irs_b, al_config(4));
    let matcher = learner.run(&oracle, 40, None).unwrap();
    let report = evaluate_matcher(&matcher, &f.irs_a, &f.irs_b, &f.dataset.test_pairs);
    assert!(report.f1 > 0.5, "AL matcher F1 {}", report.f1);
}

#[test]
fn bootstrap_corrections_counted_without_billing() {
    let f = fixture(Domain::Cosmetics, 5);
    let oracle = f.dataset.oracle();
    let mut learner = ActiveLearner::new(&f.repr, &f.irs_a, &f.irs_b, al_config(5));
    let before = oracle.queries_used();
    learner.run(&oracle, 0, None).unwrap();
    // Budget 0: only bootstrap verification (peek, unbilled) and possibly
    // class backfill ran.
    let billed = oracle.queries_used() - before;
    assert!(billed <= 2, "bootstrap verification billed {billed} labels");
}
