//! AL telemetry golden test: a Tiny end-to-end pipeline fit plus a small
//! active-learning run at `VAER_OBS=trace` must export one `al.round`
//! record per checkpoint with monotone label spend and a populated
//! sample mix, VAE epoch losses, latent-cache counters, derived matmul
//! GFLOP/s, per-span memory accounting (allocs/bytes/peak RSS), valid
//! JSONL, and a structurally sound Chrome trace.
//!
//! This binary mutates the global observability level, so everything
//! lives in ONE #[test]: sibling tests in the same process could observe
//! the level mid-change.

use vaer::core::active::{ActiveConfig, ActiveLearner};
use vaer::core::entity::IrTable;
use vaer::core::matcher::{MatcherConfig, PairExamples};
use vaer::core::pipeline::{Pipeline, PipelineConfig};
use vaer::core::repr::{ReprConfig, ReprModel};
use vaer::data::domains::{Domain, DomainSpec, Scale};
use vaer::embed::{fit_ir_model, IrKind};
use vaer::obs::{json, Level, ObsSink};

#[test]
fn trace_run_exports_full_telemetry() {
    vaer::obs::set_level(Level::Trace);
    vaer::obs::reset();

    // End-to-end pipeline fit: exercises the IR/repr/match stage spans
    // and the `pipeline.fit` timing event.
    let dataset = DomainSpec::new(Domain::Restaurants, Scale::Tiny).generate(7);
    let mut config = PipelineConfig::fast();
    config.seed = 7;
    Pipeline::fit(&dataset, &config).expect("pipeline fit");

    // Small AL run on a fresh fixture: exercises bootstrap + per-round
    // telemetry (the VAE fit below also re-emits `vae.epoch` events).
    let arity = dataset.table_a.schema.arity();
    let sentences = dataset.all_sentences();
    let ir_model = fit_ir_model(IrKind::Lsa, &sentences, &dataset.tables_raw(), 24, 7);
    let a: Vec<String> = dataset.table_a.sentences().map(str::to_owned).collect();
    let b: Vec<String> = dataset.table_b.sentences().map(str::to_owned).collect();
    let irs_a = IrTable::new(arity, ir_model.encode_batch(&a));
    let irs_b = IrTable::new(arity, ir_model.encode_batch(&b));
    let all = irs_a.irs.vconcat(&irs_b.irs);
    let (repr, stats) = ReprModel::train(&all, &ReprConfig::fast(24)).unwrap();
    assert!(
        !stats.epoch_losses.is_empty() && stats.epoch_losses.len() == stats.epoch_kl.len(),
        "per-epoch loss series missing"
    );
    let al_config = ActiveConfig {
        iterations: 5,
        matcher: MatcherConfig {
            epochs: 10,
            ..MatcherConfig::fast()
        },
        seed: 7,
        ..ActiveConfig::default()
    };
    let oracle = dataset.oracle();
    let test = PairExamples::build(&irs_a, &irs_b, &dataset.test_pairs);
    let mut learner = ActiveLearner::new(&repr, &irs_a, &irs_b, al_config);
    learner.run(&oracle, 30, Some(&test)).expect("AL run");

    let sink = ObsSink::snapshot();

    // One al.round record per checkpoint, labels monotonically spent.
    let rounds: Vec<_> = sink.events_named("al.round").collect();
    assert_eq!(
        rounds.len(),
        learner.history().len(),
        "al.round events vs history checkpoints"
    );
    assert!(!rounds.is_empty(), "no AL rounds recorded");
    let spent: Vec<u64> = rounds
        .iter()
        .map(|e| e.u64("labels_used").expect("labels_used field"))
        .collect();
    assert!(
        spent.windows(2).all(|w| w[1] >= w[0]),
        "labels_used not monotone: {spent:?}"
    );
    // Sample-mix fields present on every round, populated on at least one
    // post-bootstrap round.
    for e in &rounds {
        for key in [
            "certain_pos",
            "certain_neg",
            "uncertain_pos",
            "uncertain_neg",
        ] {
            assert!(e.field(key).is_some(), "round missing {key}");
        }
        assert!(
            e.field("retrain_secs").is_some(),
            "round missing retrain_secs"
        );
    }
    let mix_total: u64 = rounds
        .iter()
        .map(|e| {
            e.u64("certain_pos").unwrap_or(0)
                + e.u64("certain_neg").unwrap_or(0)
                + e.u64("uncertain_pos").unwrap_or(0)
                + e.u64("uncertain_neg").unwrap_or(0)
        })
        .sum();
    assert!(mix_total > 0, "sample mix empty across all rounds");

    // VAE epoch losses and matcher epochs made it out as events.
    assert!(
        sink.events_named("vae.epoch")
            .all(|e| e.f64("loss").is_some() && e.f64("kl").is_some()),
        "vae.epoch events missing loss fields"
    );
    assert!(
        sink.events_named("vae.epoch").count() > 0,
        "no vae.epoch events"
    );
    assert!(
        sink.events_named("matcher.epoch").count() > 0,
        "no matcher.epoch events"
    );

    // Latent-cache and encoder counters moved.
    assert!(sink.counter("latent.cache.builds") > 0, "no cache builds");
    assert!(sink.counter("latent.cache.reads") > 0, "no cache reads");
    assert!(sink.counter("repr.encode.calls") > 0, "no encode calls");

    // Per-shape matmul throughput derivable from the counter pairs.
    let gflops = sink.derived_gflops();
    assert!(
        gflops
            .iter()
            .any(|(name, rate)| name.contains("matmul") && *rate > 0.0),
        "no derived matmul GFLOP/s: {gflops:?}"
    );

    // Trace level keeps individual spans, including the stage nesting.
    for name in ["pipeline.fit", "repr.train", "matcher.fit", "al.run"] {
        assert!(
            sink.spans.iter().any(|s| s.name == name),
            "missing span {name}"
        );
    }

    // Memory accounting rides on the span histograms: the trainers
    // allocate (weights, minibatches), so their counts must be nonzero,
    // and on Linux the RSS sampler must have produced a peak.
    for name in ["repr.train", "matcher.fit"] {
        let h = sink
            .histograms
            .iter()
            .find(|h| h.name == name)
            .unwrap_or_else(|| panic!("missing histogram {name}"));
        assert!(h.allocs > 0, "{name} recorded no allocations");
        assert!(h.bytes > 0, "{name} recorded no allocated bytes");
        if cfg!(target_os = "linux") {
            assert!(h.rss_peak > 0, "{name} recorded no peak RSS");
        }
        assert!(h.p99() >= h.p50(), "{name} quantiles out of order");
    }

    // Chrome-trace export of the same sink is valid JSON with one "X"
    // event per span and reconstructible parent links.
    let mut trace = Vec::new();
    sink.write_chrome_trace(&mut trace).unwrap();
    let trace = String::from_utf8(trace).unwrap();
    let root = json::parse(&trace).expect("chrome trace parses");
    let events = root.get("traceEvents").unwrap().arr().unwrap();
    let xs: Vec<_> = events
        .iter()
        .filter(|e| e.get_str("ph") == Some("X"))
        .collect();
    assert_eq!(xs.len(), sink.spans.len(), "one X event per span");
    let fit_id = xs
        .iter()
        .find(|e| e.get_str("name") == Some("pipeline.fit"))
        .and_then(|e| e.get("args")?.get_num("id"))
        .expect("pipeline.fit span in trace");
    assert!(
        xs.iter()
            .any(|e| e.get("args").and_then(|a| a.get_num("parent")) == Some(fit_id)),
        "no span nests under pipeline.fit"
    );

    // JSONL export: every line is valid JSON; human summary is non-empty.
    let mut out = Vec::new();
    sink.write_jsonl(&mut out).unwrap();
    let text = String::from_utf8(out).unwrap();
    assert!(text.lines().count() > 10, "suspiciously short JSONL export");
    for line in text.lines() {
        assert!(json::is_valid(line), "invalid JSONL line: {line}");
    }
    assert!(text.contains("\"type\":\"event\""));
    assert!(text.contains("\"type\":\"throughput\""));
    assert!(!sink.summary().is_empty());

    vaer::obs::set_level(Level::Off);
}
