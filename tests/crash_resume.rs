//! Kill-and-resume integration tests: a process killed at an arbitrary
//! failpoint (via `vaer-fault`) and restarted from its durable state must
//! converge to the *bit-identical* result of an uninterrupted run — same
//! weights, same learning curve, same labels billed.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use vaer::core::active::{ActiveConfig, ActiveLearner};
use vaer::core::checkpoint::{AlSession, CheckpointStore};
use vaer::core::entity::IrTable;
use vaer::core::matcher::{MatcherConfig, PairExamples};
use vaer::core::repr::{ReprConfig, ReprModel};
use vaer::data::{LabeledPair, Oracle, PairSet};
use vaer::linalg::{Matrix, XorShiftRng};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("vaer-crash-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A toy two-table world: B's rows are noisy duplicates of A's rows under
/// the identity alignment, with two attributes per entity.
struct World {
    repr: ReprModel,
    a: IrTable,
    b: IrTable,
    duplicates: Vec<(usize, usize)>,
}

fn world(n: usize, seed: u64) -> World {
    let ir_dim = 8;
    let mut rng = XorShiftRng::new(seed);
    let mut a_rows = Vec::new();
    let mut b_rows = Vec::new();
    for _ in 0..n {
        let center: Vec<f32> = (0..ir_dim).map(|_| rng.gaussian()).collect();
        let attr2: Vec<f32> = center.iter().map(|&x| x * -0.5 + 1.0).collect();
        let jitter = |c: &[f32], rng: &mut XorShiftRng| -> Vec<f32> {
            c.iter().map(|&x| x + 0.08 * rng.gaussian()).collect()
        };
        a_rows.push(jitter(&center, &mut rng));
        a_rows.push(jitter(&attr2, &mut rng));
        b_rows.push(jitter(&center, &mut rng));
        b_rows.push(jitter(&attr2, &mut rng));
    }
    let flat = |rows: &Vec<Vec<f32>>| {
        Matrix::from_vec(rows.len(), ir_dim, rows.iter().flatten().copied().collect())
    };
    let a = IrTable::new(2, flat(&a_rows));
    let b = IrTable::new(2, flat(&b_rows));
    let all = a.irs.vconcat(&b.irs);
    let (repr, _) = ReprModel::train(&all, &ReprConfig::fast(ir_dim)).unwrap();
    World {
        repr,
        a,
        b,
        duplicates: (0..n).map(|i| (i, i)).collect(),
    }
}

fn al_config() -> ActiveConfig {
    ActiveConfig {
        iterations: 4,
        matcher: MatcherConfig {
            epochs: 6,
            ..MatcherConfig::fast()
        },
        ..ActiveConfig::default()
    }
}

fn test_pairs(n: usize) -> PairSet {
    (0..n)
        .map(|i| LabeledPair {
            left: i,
            right: i,
            is_match: true,
        })
        .chain((0..n).map(|i| LabeledPair {
            left: i,
            right: (i + 7) % n,
            is_match: false,
        }))
        .collect()
}

#[test]
fn vae_kill_and_resume_is_bit_identical() {
    let _guard = vaer::fault::test_lock();
    vaer::fault::clear();
    let mut rng = XorShiftRng::new(42);
    let irs = Matrix::from_vec(48, 8, (0..48 * 8).map(|_| rng.gaussian()).collect());
    let config = ReprConfig {
        epochs: 8,
        ..ReprConfig::fast(8)
    };
    let (baseline, baseline_stats) = ReprModel::train(&irs, &config).unwrap();

    let dir = temp_dir("vae");
    let snapshots = CheckpointStore::open(&dir, "vae").unwrap();
    // Kill the process (well, the thread) at the top of the 5th epoch:
    // epochs 0..=3 complete, snapshots exist at epochs 2 and 4.
    vaer::fault::configure("vae.epoch=panic@5").unwrap();
    let crashed = catch_unwind(AssertUnwindSafe(|| {
        ReprModel::train_checkpointed(&irs, &config, &snapshots, 2)
    }));
    vaer::fault::clear();
    assert!(crashed.is_err(), "kill switch did not fire");
    assert!(
        !snapshots.list().unwrap().is_empty(),
        "no snapshot survived the crash"
    );

    // Second process: same call resumes from the newest snapshot and must
    // land exactly where the uninterrupted run did.
    let (resumed, resumed_stats) =
        ReprModel::train_checkpointed(&irs, &config, &snapshots, 2).unwrap();
    assert_eq!(
        baseline.to_bytes(),
        resumed.to_bytes(),
        "resumed weights diverged from uninterrupted run"
    );
    assert_eq!(
        baseline_stats.epoch_losses, resumed_stats.epoch_losses,
        "resumed loss curve diverged"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn checkpoint_write_retries_and_falls_back_past_torn_files() {
    let _guard = vaer::fault::test_lock();
    vaer::fault::clear();
    let dir = temp_dir("torn");
    let store = CheckpointStore::open(&dir, "t").unwrap();

    // A transient IO error on the first attempt is absorbed by the retry.
    vaer::fault::configure("checkpoint.write=err@1").unwrap();
    store.write(1, b"first").unwrap();
    vaer::fault::clear();
    assert_eq!(store.read(1).unwrap(), b"first");

    // A torn write of snapshot 2 (half an envelope at the final path) is
    // detected by the CRC, and the newest-valid fallback serves snapshot 1.
    vaer::fault::configure("checkpoint.write=torn").unwrap();
    store.write(2, b"second").unwrap();
    vaer::fault::clear();
    assert!(store.read(2).is_err(), "torn snapshot passed validation");
    let (seq, payload) = store.read_latest().unwrap().expect("fallback snapshot");
    assert_eq!((seq, payload.as_slice()), (1, b"first".as_slice()));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn al_kill_and_resume_is_bit_identical() {
    let _guard = vaer::fault::test_lock();
    vaer::fault::clear();
    let w = world(40, 2);
    let examples = PairExamples::build(&w.a, &w.b, &test_pairs(40));

    // Uninterrupted durable run.
    let dir_ok = temp_dir("al-ok");
    let oracle_ok = Oracle::new(w.duplicates.iter().copied());
    let mut session_ok = AlSession::open(&dir_ok).unwrap();
    let mut learner_ok = ActiveLearner::new(&w.repr, &w.a, &w.b, al_config());
    let matcher_ok = learner_ok
        .run_checkpointed(&oracle_ok, 80, Some(&examples), &mut session_ok)
        .unwrap();

    // Same run, killed at the top of AL round 3.
    let dir = temp_dir("al-kill");
    let oracle_crash = Oracle::new(w.duplicates.iter().copied());
    {
        let mut session = AlSession::open(&dir).unwrap();
        let mut learner = ActiveLearner::new(&w.repr, &w.a, &w.b, al_config());
        vaer::fault::configure("al.round=panic@3").unwrap();
        let crashed = catch_unwind(AssertUnwindSafe(|| {
            learner.run_checkpointed(&oracle_crash, 80, Some(&examples), &mut session)
        }));
        vaer::fault::clear();
        assert!(crashed.is_err(), "kill switch did not fire");
    }

    // "New process": fresh oracle, session reopened from disk, learner
    // rebuilt from the newest snapshot.
    let oracle_resume = Oracle::new(w.duplicates.iter().copied());
    let mut session = AlSession::open(&dir).unwrap();
    let (_, state) = session
        .latest_snapshot()
        .unwrap()
        .expect("no snapshot survived the crash");
    let mut learner = ActiveLearner::resume(&w.repr, &w.a, &w.b, al_config(), &state).unwrap();
    let matcher = learner
        .run_checkpointed(&oracle_resume, 80, Some(&examples), &mut session)
        .unwrap();

    assert_eq!(
        matcher_ok.store().to_bytes(),
        matcher.store().to_bytes(),
        "resumed matcher weights diverged from uninterrupted run"
    );
    assert_eq!(
        oracle_ok.queries_used(),
        oracle_resume.queries_used(),
        "resume billed a different number of labels"
    );
    let (h_ok, h) = (learner_ok.history(), learner.history());
    assert_eq!(h_ok.len(), h.len(), "learning curves differ in length");
    for (a, b) in h_ok.iter().zip(h) {
        assert_eq!(a.labels_used, b.labels_used);
        assert_eq!(a.pool_sizes, b.pool_sizes);
        assert_eq!(a.sample_mix, b.sample_mix);
        assert_eq!(a.test_f1, b.test_f1);
    }
    assert_eq!(learner_ok.labeled().pairs, learner.labeled().pairs);
    let _ = std::fs::remove_dir_all(&dir_ok);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn al_mid_round_crash_loses_no_labels() {
    let _guard = vaer::fault::test_lock();
    vaer::fault::clear();
    let w = world(30, 3);
    let dir = temp_dir("al-labels");
    let oracle = Oracle::new(w.duplicates.iter().copied());

    // Kill between the (journaled) oracle queries of round 1 and the
    // snapshot that would record them.
    let journaled_at_crash;
    {
        let mut session = AlSession::open(&dir).unwrap();
        let mut learner = ActiveLearner::new(&w.repr, &w.a, &w.b, al_config());
        vaer::fault::configure("al.labels=panic@1").unwrap();
        let crashed = catch_unwind(AssertUnwindSafe(|| {
            learner.run_checkpointed(&oracle, 80, None, &mut session)
        }));
        vaer::fault::clear();
        assert!(crashed.is_err(), "kill switch did not fire");
        journaled_at_crash = session.labels().len();
    }
    assert!(journaled_at_crash > 0, "round 1 journaled no labels");
    let billed_at_crash = oracle.queries_used();

    // Resume in a fresh process with a fresh oracle: the journaled labels
    // must be replayed into the labelled sets, not lost and not re-asked
    // beyond the one-time warm-up billing.
    let oracle2 = Oracle::new(w.duplicates.iter().copied());
    let mut session = AlSession::open(&dir).unwrap();
    assert_eq!(session.labels().len(), journaled_at_crash);
    let (_, state) = session.latest_snapshot().unwrap().expect("no snapshot");
    let mut learner = ActiveLearner::resume(&w.repr, &w.a, &w.b, al_config(), &state).unwrap();
    learner
        .run_checkpointed(&oracle2, 80, None, &mut session)
        .unwrap();

    let labeled: std::collections::HashSet<(usize, usize)> = learner
        .labeled()
        .pairs
        .iter()
        .map(|p| (p.left, p.right))
        .collect();
    for e in session.labels().iter().take(journaled_at_crash) {
        assert!(
            labeled.contains(&(e.left, e.right)),
            "journaled label ({}, {}) was lost on resume",
            e.left,
            e.right
        );
    }
    // Warming the resumed oracle re-bills exactly the pairs the crashed
    // process had already asked — never more.
    assert!(
        oracle2.queries_used() >= billed_at_crash,
        "resumed run billed fewer labels than were journaled"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
