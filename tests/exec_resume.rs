//! Executor telemetry + durability: the staged resolution path must
//! build its LSH index exactly once per fitted pipeline no matter how
//! many times it resolves, report plan cache hits on threshold re-runs,
//! surface injected stage failures as errors, and — when checkpointed —
//! resume a killed resolve bit-for-bit from the stage artifacts.
//!
//! This binary mutates the global observability level and arms
//! failpoints, so everything lives in ONE #[test]: sibling tests in the
//! same process could observe the level mid-change or trip an armed
//! failpoint.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use vaer::core::checkpoint::CheckpointStore;
use vaer::core::pipeline::{Pipeline, PipelineConfig};
use vaer::data::domains::{Domain, DomainSpec, Scale};
use vaer::obs::{Level, ObsSink};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("vaer-exec-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn staged_resolution_counts_builds_reports_failures_and_resumes() {
    let _guard = vaer::fault::test_lock();
    vaer::fault::clear();
    vaer::obs::set_level(Level::Summary);

    let ds = DomainSpec::new(Domain::Restaurants, Scale::Tiny).generate(31);
    let mut config = PipelineConfig::fast();
    config.seed = 31;
    let pipeline = Pipeline::fit(&ds, &config).unwrap();
    // Count resolution-phase telemetry only, not fit's.
    vaer::obs::reset();

    // --- One index build across arbitrarily many resolves. ---
    let baseline = pipeline.resolve(5, 0.5);
    let mut plan = pipeline.resolve_plan();
    let first = plan.run(5, 0.5).unwrap();
    assert_eq!(first.links, baseline);
    let rerun = plan.run(5, 0.9).unwrap();
    assert!(rerun.reused, "threshold re-run must be a cache hit");
    let again = plan.run(5, 0.5).unwrap();
    assert!(again.reused);
    assert_eq!(again.links, baseline);
    // A second plan over the same pipeline shares the OnceLock index.
    let mut plan2 = pipeline.resolve_plan();
    plan2.run(5, 0.5).unwrap();
    let sink = ObsSink::snapshot();
    assert_eq!(
        sink.counter("exec.index.builds"),
        1,
        "LSH index must be built exactly once per fitted pipeline"
    );
    assert!(
        sink.counter("exec.plan.cache.hits") >= 2,
        "threshold re-runs were not served from the plan cache"
    );
    assert!(sink.counter("exec.plan.runs") >= 4);
    assert!(sink.counter("exec.stage.runs") >= 5);

    // --- An injected stage failure surfaces as Err, not a panic. ---
    vaer::fault::configure("exec.score=err@1").unwrap();
    let mut failing = pipeline.resolve_plan();
    let err = failing.run(7, 0.5);
    vaer::fault::clear();
    assert!(err.is_err(), "injected Score failure was swallowed");

    // --- Kill at Link, resume from the checkpointed stage artifacts. ---
    let dir = temp_dir("resume");
    {
        let store = CheckpointStore::open(&dir, "exec").unwrap();
        let plan = pipeline.resolve_plan().with_checkpoints(store);
        vaer::fault::configure("exec.link=panic@1").unwrap();
        let crashed = catch_unwind(AssertUnwindSafe(move || {
            let mut plan = plan;
            plan.run(5, 0.5)
        }));
        vaer::fault::clear();
        assert!(crashed.is_err(), "kill switch did not fire");
    }
    // "New process": same store, fresh same-seed plan. Block and Score
    // replay from their checkpoints; the result must be bit-identical to
    // the uninterrupted run.
    let resumed_before = ObsSink::snapshot().counter("exec.stage.resumed");
    let store = CheckpointStore::open(&dir, "exec").unwrap();
    let mut resumed_plan = pipeline.resolve_plan().with_checkpoints(store);
    let resumed = resumed_plan.run(5, 0.5).unwrap();
    assert_eq!(
        resumed.links, baseline,
        "resumed resolve diverged from uninterrupted run"
    );
    let resumed_after = ObsSink::snapshot().counter("exec.stage.resumed");
    assert_eq!(
        resumed_after - resumed_before,
        2,
        "Block and Score must both replay from checkpoints"
    );
    // And the resumed plan keeps serving threshold re-runs from memory.
    assert!(resumed_plan.run(5, 0.8).unwrap().reused);

    // Still exactly one index build after everything above.
    assert_eq!(ObsSink::snapshot().counter("exec.index.builds"), 1);

    let _ = std::fs::remove_dir_all(&dir);
    vaer::obs::set_level(Level::Off);
}
