//! Integration tests of the four IR generator families through the full
//! pipeline: every IR kind must produce a usable end-to-end matcher.

use vaer::core::pipeline::{Pipeline, PipelineConfig};
use vaer::data::domains::{Domain, DomainSpec, Scale};
use vaer::embed::{fit_ir_model, IrKind};
use vaer::linalg::vector::norm;

#[test]
fn every_ir_kind_drives_a_working_pipeline() {
    let ds = DomainSpec::new(Domain::Restaurants, Scale::Tiny).generate(31);
    for kind in IrKind::ALL {
        let mut config = PipelineConfig::fast();
        config.ir_kind = kind;
        config.seed = 31;
        let pipeline = Pipeline::fit(&ds, &config).unwrap();
        let f1 = pipeline.evaluate(&ds.test_pairs).f1;
        assert!(f1 > 0.5, "{kind}: F1 {f1}");
    }
}

#[test]
fn ir_models_encode_duplicates_closer_than_random() {
    let ds = DomainSpec::new(Domain::Citations1, Scale::Tiny).generate(17);
    let sentences = ds.all_sentences();
    for kind in IrKind::ALL {
        let model = fit_ir_model(kind, &sentences, &ds.tables_raw(), 32, 17);
        let mut dup_cos = 0.0f32;
        let mut rnd_cos = 0.0f32;
        let mut n = 0;
        for &(a, b) in ds.duplicates.iter().take(20) {
            let va = model.encode(&ds.table_a.row(a)[0]);
            let vb = model.encode(&ds.table_b.row(b)[0]);
            let vr = model.encode(&ds.table_b.row((b + 7) % ds.table_b.len())[0]);
            if norm(&va) == 0.0 || norm(&vb) == 0.0 || norm(&vr) == 0.0 {
                continue;
            }
            dup_cos += vaer::linalg::vector::cosine(&va, &vb);
            rnd_cos += vaer::linalg::vector::cosine(&va, &vr);
            n += 1;
        }
        assert!(n > 5, "{kind}: too few comparable pairs");
        assert!(
            dup_cos / n as f32 > rnd_cos / n as f32,
            "{kind}: duplicates not closer (dup {} vs rnd {})",
            dup_cos / n as f32,
            rnd_cos / n as f32
        );
    }
}

#[test]
fn encode_batch_matches_encode() {
    let ds = DomainSpec::new(Domain::Beer, Scale::Tiny).generate(2);
    let sentences = ds.all_sentences();
    let model = fit_ir_model(IrKind::Lsa, &sentences, &ds.tables_raw(), 16, 2);
    let some: Vec<String> = sentences.iter().take(5).cloned().collect();
    let batch = model.encode_batch(&some);
    for (i, s) in some.iter().enumerate() {
        assert_eq!(batch.row(i), model.encode(s).as_slice(), "row {i}");
    }
}

#[test]
fn ir_dims_are_respected_across_kinds() {
    let ds = DomainSpec::new(Domain::Software, Scale::Tiny).generate(3);
    let sentences = ds.all_sentences();
    for dims in [8usize, 48] {
        for kind in IrKind::ALL {
            let model = fit_ir_model(kind, &sentences, &ds.tables_raw(), dims, 3);
            assert_eq!(model.dims(), dims, "{kind} at {dims}");
            assert_eq!(model.encode("any value").len(), dims, "{kind} at {dims}");
        }
    }
}
