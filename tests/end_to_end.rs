//! Integration tests spanning the whole workspace: data generation →
//! IRs → VAE → matcher → evaluation, plus blocking and transfer.

use vaer::core::pipeline::{Pipeline, PipelineConfig};
use vaer::core::transfer::adapt_dataset_arity;
use vaer::data::domains::{Domain, DomainSpec, Scale};

fn fast(seed: u64) -> PipelineConfig {
    let mut c = PipelineConfig::fast();
    c.seed = seed;
    c
}

#[test]
fn pipeline_learns_three_contrasting_domains() {
    // One clean structured domain, one noisy product domain, one contacts
    // domain — the pipeline must produce a usable matcher on each.
    for (domain, min_f1) in [
        (Domain::Restaurants, 0.6),
        (Domain::Cosmetics, 0.4),
        (Domain::Crm, 0.6),
    ] {
        let ds = DomainSpec::new(domain, Scale::Tiny).generate(97);
        let pipeline = Pipeline::fit(&ds, &fast(97)).unwrap();
        let f1 = pipeline.evaluate(&ds.test_pairs).f1;
        assert!(f1 >= min_f1, "{domain:?}: F1 {f1} < {min_f1}");
    }
}

#[test]
fn representations_beat_chance_on_retrieval() {
    let ds = DomainSpec::new(Domain::Citations1, Scale::Tiny).generate(5);
    let pipeline = Pipeline::fit(&ds, &fast(5)).unwrap();
    let report = pipeline.representation_report(&ds.test_pairs, 10);
    assert!(
        report.recall > 0.5,
        "representation recall {}",
        report.recall
    );
}

#[test]
fn blocking_prunes_the_cross_product() {
    let ds = DomainSpec::new(Domain::Beer, Scale::Tiny).generate(9);
    let pipeline = Pipeline::fit(&ds, &fast(9)).unwrap();
    let k = 5;
    let candidates = pipeline.blocking_candidates(k);
    assert!(!candidates.is_empty());
    assert!(
        candidates.len() <= ds.table_a.len() * k,
        "blocking returned more than A·k pairs"
    );
    // Pairs reference valid rows.
    for c in &candidates {
        assert!(c.left < ds.table_a.len());
        assert!(c.right < ds.table_b.len());
    }
}

#[test]
fn transfer_between_unrelated_domains_works() {
    let config = fast(13);
    let source = DomainSpec::new(Domain::Music, Scale::Tiny).generate(13);
    let source_pipeline = Pipeline::fit(&source, &config).unwrap();

    let target = DomainSpec::new(Domain::Stocks, Scale::Tiny).generate(14);
    let adapted = adapt_dataset_arity(&target, source.table_a.schema.arity());
    let transferred =
        Pipeline::fit_transferred(&adapted, &config, source_pipeline.repr().clone()).unwrap();
    assert_eq!(
        transferred.timings().repr_secs,
        0.0,
        "transfer must skip repr training"
    );
    let f1 = transferred.evaluate(&adapted.test_pairs).f1;
    assert!(f1 > 0.4, "transferred F1 {f1}");
}

#[test]
fn timings_are_populated_and_ordered() {
    let ds = DomainSpec::new(Domain::Restaurants, Scale::Tiny).generate(3);
    let pipeline = Pipeline::fit(&ds, &fast(3)).unwrap();
    let t = pipeline.timings();
    assert!(t.ir_secs > 0.0);
    assert!(t.repr_secs > 0.0);
    assert!(t.match_secs > 0.0);
    assert!((t.total() - (t.ir_secs + t.repr_secs + t.match_secs)).abs() < 1e-9);
}

#[test]
fn deterministic_given_seed() {
    let ds = DomainSpec::new(Domain::Beer, Scale::Tiny).generate(4);
    let a = Pipeline::fit(&ds, &fast(4)).unwrap();
    let b = Pipeline::fit(&ds, &fast(4)).unwrap();
    assert_eq!(a.predict(&ds.test_pairs), b.predict(&ds.test_pairs));
}
