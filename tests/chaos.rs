//! Seeded chaos soak for the resilience model (DESIGN.md §15).
//!
//! Every schedule here is a pure function of its seed: `vaer-fault`'s
//! probabilistic clauses (`name=action~p`, armed via `configure_seeded`)
//! draw from per-failpoint SplitMix64 streams, retry jitter is seeded,
//! and stage order is fixed. The contract under soak is absolute:
//!
//! - a run ends in a **bit-identical result** or a **typed error** —
//!   never a panic, never a hang;
//! - every fault a successful run absorbed is visible in its
//!   [`ResolutionHealth`] (retries burned, degradations taken) — silent
//!   degradation is the bug these tests exist to catch;
//! - cancellation and deadlines surface within a bounded number of
//!   probes, leaving no partial checkpoint behind.
//!
//! This binary arms process-global failpoints, so every test takes
//! `vaer::fault::test_lock()` for its whole body.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::time::Duration;
use vaer::core::checkpoint::CheckpointStore;
use vaer::core::exec::{EncodeStage, Executor, FusedScoreStage, StageKind, SCORE_BLOCK};
use vaer::core::pipeline::{Pipeline, PipelineConfig, ScorePrecision};
use vaer::core::resilience::{CancelToken, RetryPolicy, RunBudget};
use vaer::core::CoreError;
use vaer::data::domains::{Domain, DomainSpec, Scale};

/// Failpoints the resolve soak arms; `fired()` over this set reconciles
/// injected faults against the health report a run hands back.
const SOAK_SITES: &[&str] = &["exec.block", "exec.score", "exec.link", "checkpoint.write"];

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("vaer-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn fitted(seed: u64) -> (vaer::data::Dataset, Pipeline) {
    let ds = DomainSpec::new(Domain::Restaurants, Scale::Tiny).generate(seed);
    let mut config = PipelineConfig::fast();
    config.seed = seed;
    let p = Pipeline::fit(&ds, &config).unwrap();
    (ds, p)
}

/// A retry policy with microsecond-class backoff so a 50+-schedule soak
/// stays quick while still exercising the full retry machinery.
fn soak_retry(seed: u64) -> RetryPolicy {
    RetryPolicy {
        max_attempts: 3,
        base_backoff: Duration::from_micros(5),
        max_backoff: Duration::from_micros(20),
        max_total_backoff: Duration::from_millis(5),
        seed,
    }
}

fn total_fired() -> u64 {
    SOAK_SITES.iter().map(|s| vaer::fault::fired(s)).sum()
}

/// The soak matrix: 60 seeded fault schedules over the staged resolve,
/// alternating durable/in-memory plans and int8/f32 lanes. Every run must
/// end in a bit-identical resolution or a typed error, with an honest
/// health report either way.
#[test]
fn chaos_soak_resolve_never_panics_and_never_degrades_silently() {
    let _guard = vaer::fault::test_lock();
    vaer::fault::clear();
    let (_ds, p) = fitted(53);
    assert!(
        p.quantized_matcher().is_some(),
        "soak needs both scoring lanes"
    );
    // Fault-free baselines, one per lane (the int8 lane is allowed to
    // round differently; "bit-identical" is per effective precision).
    let baseline_f32 = p
        .resolve_plan()
        .run_with_precision(5, 0.5, ScorePrecision::F32)
        .unwrap()
        .links;
    let baseline_int8 = p
        .resolve_plan()
        .run_with_precision(5, 0.5, ScorePrecision::Int8)
        .unwrap()
        .links;

    let spec = "exec.block=err~0.10,exec.score=err~0.20,exec.link=err~0.10,\
                checkpoint.write=err~0.25";
    let (mut clean, mut absorbed, mut failed) = (0u32, 0u32, 0u32);
    for seed in 0..60u64 {
        let durable = seed % 2 == 0;
        let requested = if seed % 3 == 0 {
            ScorePrecision::Int8
        } else {
            ScorePrecision::F32
        };
        let dir = temp_dir(&format!("soak-{seed}"));
        vaer::fault::configure_seeded(spec, seed).unwrap();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let mut plan = p.resolve_plan().with_retry(soak_retry(seed));
            if durable {
                let store = CheckpointStore::open(&dir, "exec")
                    .unwrap()
                    .with_retry(soak_retry(seed ^ 0xD15C));
                plan = plan.with_checkpoints(store);
            }
            plan.run_with_precision(5, 0.5, requested)
        }));
        let fired = total_fired();
        vaer::fault::clear();
        let _ = std::fs::remove_dir_all(&dir);

        let result =
            outcome.unwrap_or_else(|_| panic!("seed {seed}: chaos schedule escalated to a panic"));
        match result {
            Ok(res) => {
                let baseline = match res.precision {
                    ScorePrecision::F32 => &baseline_f32,
                    ScorePrecision::Int8 => &baseline_int8,
                };
                assert_eq!(
                    &res.links, baseline,
                    "seed {seed}: a surviving run must be bit-identical to \
                     its lane's fault-free baseline"
                );
                if res.health.degraded("degrade.score.f32_fallback") {
                    assert_eq!(
                        res.precision,
                        ScorePrecision::F32,
                        "seed {seed}: an int8 fallback must report f32"
                    );
                }
                if fired > 0 {
                    assert!(
                        !res.health.is_clean(),
                        "seed {seed}: {fired} fault(s) fired but the health \
                         report claims a clean run — silent degradation"
                    );
                    absorbed += 1;
                } else {
                    assert!(res.health.is_clean(), "seed {seed}: phantom health");
                    clean += 1;
                }
            }
            Err(e) => {
                assert!(fired > 0, "seed {seed}: error {e} without any fired fault");
                assert!(
                    matches!(e, CoreError::Io(_)),
                    "seed {seed}: injected IO faults must surface typed, got {e:?}"
                );
                failed += 1;
            }
        }
    }
    // The probabilities are tuned so the soak actually exercises all
    // three outcomes; a schedule drift that collapses one to zero means
    // the matrix stopped covering the ladder.
    assert!(clean > 0, "no schedule ran fault-free");
    assert!(
        absorbed > 0,
        "no schedule absorbed faults via retries/fallbacks"
    );
    assert!(failed > 0, "no schedule exhausted its retry budget");
}

/// Same (spec, seed) ⇒ same outcome, link-for-link or error-for-error:
/// the soak is replayable, which is what makes its failures debuggable.
#[test]
fn chaos_schedules_are_seed_reproducible() {
    let _guard = vaer::fault::test_lock();
    vaer::fault::clear();
    let (_ds, p) = fitted(59);
    let spec = "exec.score=err~0.35,exec.link=err~0.25";
    let run = |seed: u64| -> Result<Vec<(usize, usize, f32)>, String> {
        vaer::fault::configure_seeded(spec, seed).unwrap();
        let out = p
            .resolve_plan()
            .with_retry(soak_retry(seed))
            .run(5, 0.5)
            .map(|r| r.links)
            .map_err(|e| e.to_string());
        vaer::fault::clear();
        out
    };
    for seed in [3u64, 11, 27, 40, 55] {
        assert_eq!(run(seed), run(seed), "seed {seed} replay diverged");
    }
}

/// Mid-Score cancellation latency: the fused Score probes once per
/// `SCORE_BLOCK` chunk, so an armed token trips within one chunk — and
/// the aborted stage leaves no partial checkpoint behind.
#[test]
fn cancellation_trips_mid_score_without_partial_checkpoint() {
    let _guard = vaer::fault::test_lock();
    vaer::fault::clear();
    let (ds, p) = fitted(61);
    let dir = temp_dir("cancel-score");
    let (len_a, len_b) = (ds.table_a.len(), ds.table_b.len());
    // Three chunks: probe 1 = stage boundary, probes 2.. = chunk loop.
    let pairs: Vec<(usize, usize)> = (0..2 * SCORE_BLOCK + 64)
        .map(|i| ((i * 7) % len_a, (i * 13) % len_b))
        .collect();
    let token = CancelToken::new();
    let store = CheckpointStore::open(&dir, "exec").unwrap();
    let mut executor = Executor::with_checkpoints(store);
    executor.set_budget(RunBudget::unlimited().with_cancel(token.clone()));
    let mut stage = FusedScoreStage {
        pipeline: &p,
        precision: ScorePrecision::F32,
        budget: executor.budget().clone(),
    };
    token.cancel_after_probes(3); // boundary, chunk 1, trip inside chunk 2
    let err = executor.run(&mut stage, pairs, 0xF00D).unwrap_err();
    assert!(
        matches!(&err, CoreError::Cancelled(msg) if msg.contains("exec.score")),
        "expected Cancelled at exec.score, got {err:?}"
    );
    assert_eq!(
        token.probes(),
        3,
        "cancellation latency exceeded the probe bound"
    );
    let reopened = CheckpointStore::open(&dir, "exec").unwrap();
    assert!(
        reopened.list().unwrap().is_empty(),
        "cancelled Score left a checkpoint behind"
    );
    assert!(reopened.read(StageKind::Score.seq()).is_err());
    let _ = std::fs::remove_dir_all(&dir);
}

/// Mid-Encode cancellation: the Encode boundary probe is the first thing
/// the executor does, so a cancelled token stops the stage before any
/// feature work happens.
#[test]
fn cancellation_trips_at_encode_boundary() {
    let _guard = vaer::fault::test_lock();
    vaer::fault::clear();
    let (_ds, p) = fitted(67);
    let token = CancelToken::new();
    let mut executor = Executor::new();
    executor.set_budget(RunBudget::unlimited().with_cancel(token.clone()));
    let mut stage = EncodeStage { pipeline: &p };
    token.cancel_after_probes(1);
    let err = match executor.run(&mut stage, vec![(0usize, 0usize)], 0xE2C0) {
        Ok(_) => panic!("cancelled Encode ran anyway"),
        Err(e) => e,
    };
    assert!(
        matches!(&err, CoreError::Cancelled(msg) if msg.contains("exec.encode")),
        "expected Cancelled at exec.encode, got {err:?}"
    );
    assert_eq!(token.probes(), 1, "Encode must stop at its first probe");
}

/// Plan-level budgets: a pre-cancelled token stops the run at the Block
/// boundary (no checkpoint written at all), a fuse trips inside the
/// blocking join within one row's probe, and a spent deadline surfaces as
/// `DeadlineExceeded` — all typed, none hung.
#[test]
fn plan_budgets_cancel_and_expire_with_typed_errors() {
    let _guard = vaer::fault::test_lock();
    vaer::fault::clear();
    let (_ds, p) = fitted(71);

    // Pre-cancelled: nothing runs, nothing is written.
    let dir = temp_dir("cancel-plan");
    let token = CancelToken::new();
    token.cancel();
    let store = CheckpointStore::open(&dir, "exec").unwrap();
    let err = p
        .resolve_plan()
        .with_checkpoints(store)
        .with_budget(RunBudget::unlimited().with_cancel(token.clone()))
        .run(5, 0.5)
        .unwrap_err();
    assert!(
        matches!(&err, CoreError::Cancelled(msg) if msg.contains("exec.block")),
        "expected Cancelled at the Block boundary, got {err:?}"
    );
    let reopened = CheckpointStore::open(&dir, "exec").unwrap();
    assert!(
        reopened.list().unwrap().is_empty(),
        "a run cancelled before its first stage wrote a checkpoint"
    );
    let _ = std::fs::remove_dir_all(&dir);

    // Mid-Block: probe 1 is the stage boundary, probe 2 the first join
    // row — the fuse trips inside the join loop, not at a seam.
    let token = CancelToken::new();
    token.cancel_after_probes(2);
    let err = p
        .resolve_plan()
        .with_budget(RunBudget::unlimited().with_cancel(token.clone()))
        .run(5, 0.5)
        .unwrap_err();
    assert!(matches!(&err, CoreError::Cancelled(_)), "got {err:?}");
    assert_eq!(token.probes(), 2, "Block must honour the fuse mid-join");

    // Spent deadline: typed, immediate.
    let err = p
        .resolve_plan()
        .with_budget(RunBudget::unlimited().with_deadline(Duration::ZERO))
        .run(5, 0.5)
        .unwrap_err();
    assert!(matches!(err, CoreError::DeadlineExceeded(_)), "got {err:?}");

    // A budgeted plan constructor probes the (shared, already-built)
    // index path too — and a healthy budget resolves normally.
    let res = p
        .resolve_plan_budgeted(RunBudget::unlimited().with_deadline(Duration::from_secs(3600)))
        .unwrap()
        .run(5, 0.5)
        .unwrap();
    assert!(res.health.is_clean());
}

/// A torn checkpoint (crash mid-write) must degrade to recompute on the
/// next run — recorded in the health report — and still produce the
/// bit-identical resolution.
#[test]
fn torn_checkpoint_degrades_to_recompute_with_identical_result() {
    let _guard = vaer::fault::test_lock();
    vaer::fault::clear();
    let (_ds, p) = fitted(73);
    let baseline = p.resolve_plan().run(5, 0.5).unwrap().links;
    let dir = temp_dir("torn");
    {
        // First write (the Block artifact) lands torn: half an envelope
        // at the final path, exactly what a crash mid-write leaves.
        let store = CheckpointStore::open(&dir, "exec").unwrap();
        vaer::fault::configure("checkpoint.write=torn@1").unwrap();
        let res = p
            .resolve_plan()
            .with_checkpoints(store)
            .run(5, 0.5)
            .unwrap();
        vaer::fault::clear();
        assert_eq!(res.links, baseline);
    }
    let store = CheckpointStore::open(&dir, "exec").unwrap();
    let res = p
        .resolve_plan()
        .with_checkpoints(store)
        .run(5, 0.5)
        .unwrap();
    assert!(
        res.health.degraded("degrade.stage.recompute"),
        "corrupt Block checkpoint was not reported: {:?}",
        res.health
    );
    assert_eq!(
        res.links, baseline,
        "recompute after corruption diverged from the fault-free run"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A poisoned score memo (length disagreeing with its candidate list) is
/// detected, reported as `degrade.plan.rebuild`, and rebuilt cold to the
/// bit-identical resolution.
#[test]
fn poisoned_score_memo_rebuilds_cold() {
    let _guard = vaer::fault::test_lock();
    vaer::fault::clear();
    let (_ds, p) = fitted(79);
    let mut plan = p.resolve_plan();
    let first = plan.run(5, 0.5).unwrap();
    assert!(first.health.is_clean());
    // Sanity: an honest memo is reused without degradation.
    let reused = plan.run(5, 0.8).unwrap();
    assert!(reused.reused && reused.health.is_clean());
    // Poison: wrong-length probabilities for the memoised k.
    plan.seed_scores(5, first.precision, vec![0.25; 3]);
    let rebuilt = plan.run(5, 0.5).unwrap();
    assert!(
        rebuilt.health.degraded("degrade.plan.rebuild"),
        "poisoned memo not reported: {:?}",
        rebuilt.health
    );
    assert!(!rebuilt.reused, "a poisoned memo must not count as a reuse");
    assert_eq!(rebuilt.links, first.links, "cold rebuild diverged");
}

/// Fit under gradient chaos: NaN-poisoned VAE/matcher gradient steps may
/// cost epochs or fail the fit, but must never panic or hang — and a
/// spent budget surfaces as a typed error on the epoch boundary.
#[test]
fn fit_survives_gradient_chaos_and_honours_budgets() {
    let _guard = vaer::fault::test_lock();
    vaer::fault::clear();
    let ds = DomainSpec::new(Domain::Beer, Scale::Tiny).generate(83);
    let mut config = PipelineConfig::fast();
    config.seed = 83;
    for seed in [1u64, 2, 3] {
        vaer::fault::configure_seeded("vae.grads=nan~0.04,matcher.grads=nan~0.04", seed).unwrap();
        let outcome = catch_unwind(AssertUnwindSafe(|| Pipeline::fit(&ds, &config)));
        vaer::fault::clear();
        match outcome.unwrap_or_else(|_| panic!("seed {seed}: fit panicked under NaN chaos")) {
            Ok(_) => {}
            Err(CoreError::Diverged(_) | CoreError::Model(_)) => {}
            Err(e) => panic!("seed {seed}: fit surfaced an untyped failure mode: {e:?}"),
        }
    }
    // Divergence-rollback retries and epochs alike consume the run
    // budget: a zero deadline stops training at the first epoch probe.
    let err = Pipeline::fit_budgeted(
        &ds,
        &config,
        &RunBudget::unlimited().with_deadline(Duration::ZERO),
    )
    .map(|_| ())
    .unwrap_err();
    assert!(matches!(err, CoreError::DeadlineExceeded(_)), "got {err:?}");
    // Cooperative cancellation reaches the training loops too.
    let token = CancelToken::new();
    token.cancel();
    let err = Pipeline::fit_budgeted(&ds, &config, &RunBudget::unlimited().with_cancel(token))
        .map(|_| ())
        .unwrap_err();
    assert!(matches!(err, CoreError::Cancelled(_)), "got {err:?}");
}
