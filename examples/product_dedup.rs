//! Deduplicating a noisy product catalogue with blocking.
//!
//! The workload the paper's introduction motivates: two dirty product
//! feeds (here the Cosmetics domain — missing values, near-identical
//! colour variants) that must be linked without comparing every pair.
//! The example shows the full deployment shape:
//!
//! 1. unsupervised representations → LSH blocking (§VI-B),
//! 2. the Siamese matcher scoring only the surviving candidates,
//! 3. threshold sweeps over a `ResolvePlan` that owns the blocked and
//!    scored artifacts — re-linking is free, no re-blocking/re-scoring,
//! 4. a CSV export of the discovered links.
//!
//! Run with: `cargo run --release --example product_dedup`

use vaer::core::pipeline::{Pipeline, PipelineConfig};
use vaer::data::csv::to_csv;
use vaer::data::domains::{Domain, DomainSpec, Scale};
use vaer::data::{Schema, Table};

fn main() {
    let dataset = DomainSpec::new(Domain::Cosmetics, Scale::Small).generate(33);
    println!("catalogue: {}", dataset.summary());
    println!(
        "missing values: {:.0}% of cells in feed B",
        dataset.table_b.missing_rate() * 100.0
    );

    let mut config = PipelineConfig::paper();
    config.seed = 33;
    let pipeline = Pipeline::fit(&dataset, &config).expect("pipeline fits");

    // Blocking: each left product is paired only with its top-10 latent
    // neighbours instead of all |B| rows.
    let k = 10;
    let candidates = pipeline.blocking_candidates(k);
    let exhaustive = dataset.table_a.len() * dataset.table_b.len();
    println!(
        "blocking: {} candidate pairs instead of {} ({:.1}% of the cross product)",
        candidates.len(),
        exhaustive,
        100.0 * candidates.len() as f64 / exhaustive as f64
    );
    let covered = {
        let cand: std::collections::HashSet<(usize, usize)> =
            candidates.iter().map(|c| (c.left, c.right)).collect();
        dataset
            .duplicates
            .iter()
            .filter(|&&(a, b)| cand.contains(&(a, b)))
            .count()
    };
    println!(
        "blocking recall: {}/{} true duplicates survive",
        covered,
        dataset.duplicates.len()
    );

    // Match and link through the staged executor. The plan owns the LSH
    // index and the scored candidates, so the stricter pass below only
    // re-runs the Link stage over cached probabilities.
    let mut plan = pipeline.resolve_plan();
    let resolution = plan.run(k, 0.5).expect("resolve");
    let links = resolution.links;
    // Cosmetics is the paper's hard case: "many similar entities that only
    // diverge in one attribute, e.g., color" — expect many plausible but
    // wrong links at the default threshold. Measure against ground truth.
    let truth: std::collections::HashSet<(usize, usize)> =
        dataset.duplicates.iter().copied().collect();
    let correct = links
        .iter()
        .filter(|&&(a, b, _)| truth.contains(&(a, b)))
        .count();
    println!(
        "\ndiscovered {} links at p>=0.5 ({} correct, precision {:.2}); strongest five:",
        links.len(),
        correct,
        correct as f32 / links.len().max(1) as f32
    );
    let strict_pass = plan.run(k, 0.95).expect("strict re-link");
    assert!(
        strict_pass.reused,
        "re-link must reuse the scored artifacts"
    );
    let strict = strict_pass.links;
    let strict_correct = strict
        .iter()
        .filter(|&&(a, b, _)| truth.contains(&(a, b)))
        .count();
    println!(
        "at p>=0.95: {} links, precision {:.2} — re-thresholding the cached plan \
         trades recall for precision without re-blocking or re-scoring",
        strict.len(),
        strict_correct as f32 / strict.len().max(1) as f32
    );
    for &(a, b, p) in links.iter().take(5) {
        println!(
            "  {:.2}  {:<45} == {}",
            p,
            dataset.table_a.row(a)[0],
            dataset.table_b.row(b)[0]
        );
    }

    // Export the link table as CSV.
    let mut out = Table::new(Schema::new(
        "links",
        &["product_a", "product_b", "confidence"],
    ));
    for &(a, b, p) in &links {
        out.push(vec![
            dataset.table_a.row(a)[0].clone(),
            dataset.table_b.row(b)[0].clone(),
            format!("{p:.3}"),
        ]);
    }
    let path = std::env::temp_dir().join("vaer_product_links.csv");
    std::fs::write(&path, to_csv(&out)).expect("CSV export");
    println!("\nwrote {} links to {}", out.len(), path.display());
}
