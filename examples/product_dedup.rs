//! Deduplicating a noisy product catalogue with blocking.
//!
//! The workload the paper's introduction motivates: two dirty product
//! feeds (here the Cosmetics domain — missing values, near-identical
//! colour variants) that must be linked without comparing every pair.
//! The example shows the full deployment shape:
//!
//! 1. unsupervised representations → LSH blocking (§VI-B),
//! 2. the Siamese matcher scoring only the surviving candidates,
//! 3. a CSV export of the discovered links.
//!
//! Run with: `cargo run --release --example product_dedup`

use vaer::core::pipeline::{Pipeline, PipelineConfig};
use vaer::data::csv::to_csv;
use vaer::data::domains::{Domain, DomainSpec, Scale};
use vaer::data::{LabeledPair, PairSet, Schema, Table};

fn main() {
    let dataset = DomainSpec::new(Domain::Cosmetics, Scale::Small).generate(33);
    println!("catalogue: {}", dataset.summary());
    println!(
        "missing values: {:.0}% of cells in feed B",
        dataset.table_b.missing_rate() * 100.0
    );

    let mut config = PipelineConfig::paper();
    config.seed = 33;
    let pipeline = Pipeline::fit(&dataset, &config).expect("pipeline fits");

    // Blocking: each left product is paired only with its top-10 latent
    // neighbours instead of all |B| rows.
    let k = 10;
    let candidates = pipeline.blocking_candidates(k);
    let exhaustive = dataset.table_a.len() * dataset.table_b.len();
    println!(
        "blocking: {} candidate pairs instead of {} ({:.1}% of the cross product)",
        candidates.len(),
        exhaustive,
        100.0 * candidates.len() as f64 / exhaustive as f64
    );
    let covered = {
        let cand: std::collections::HashSet<(usize, usize)> =
            candidates.iter().map(|c| (c.left, c.right)).collect();
        dataset
            .duplicates
            .iter()
            .filter(|&&(a, b)| cand.contains(&(a, b)))
            .count()
    };
    println!(
        "blocking recall: {}/{} true duplicates survive",
        covered,
        dataset.duplicates.len()
    );

    // Match the candidates.
    let candidate_pairs: PairSet = candidates
        .iter()
        .map(|c| LabeledPair {
            left: c.left,
            right: c.right,
            is_match: false,
        })
        .collect();
    let probs = pipeline.predict(&candidate_pairs);
    let mut links: Vec<(usize, usize, f32)> = candidate_pairs
        .pairs
        .iter()
        .zip(&probs)
        .filter(|(_, &p)| p > 0.5)
        .map(|(pair, &p)| (pair.left, pair.right, p))
        .collect();
    links.sort_by(|a, b| b.2.partial_cmp(&a.2).unwrap_or(std::cmp::Ordering::Equal));
    // Cosmetics is the paper's hard case: "many similar entities that only
    // diverge in one attribute, e.g., color" — expect many plausible but
    // wrong links at the default threshold. Measure against ground truth.
    let truth: std::collections::HashSet<(usize, usize)> =
        dataset.duplicates.iter().copied().collect();
    let correct = links
        .iter()
        .filter(|&&(a, b, _)| truth.contains(&(a, b)))
        .count();
    println!(
        "\ndiscovered {} links at p>0.5 ({} correct, precision {:.2}); strongest five:",
        links.len(),
        correct,
        correct as f32 / links.len().max(1) as f32
    );
    let strict: Vec<_> = links.iter().filter(|&&(_, _, p)| p > 0.95).collect();
    let strict_correct = strict
        .iter()
        .filter(|&&&(a, b, _)| truth.contains(&(a, b)))
        .count();
    println!(
        "at p>0.95: {} links, precision {:.2} — thresholding trades recall for precision",
        strict.len(),
        strict_correct as f32 / strict.len().max(1) as f32
    );
    for &(a, b, p) in links.iter().take(5) {
        println!(
            "  {:.2}  {:<45} == {}",
            p,
            dataset.table_a.row(a)[0],
            dataset.table_b.row(b)[0]
        );
    }

    // Export the link table as CSV.
    let mut out = Table::new(Schema::new(
        "links",
        &["product_a", "product_b", "confidence"],
    ));
    for &(a, b, p) in &links {
        out.push(vec![
            dataset.table_a.row(a)[0].clone(),
            dataset.table_b.row(b)[0].clone(),
            format!("{p:.3}"),
        ]);
    }
    let path = std::env::temp_dir().join("vaer_product_links.csv");
    std::fs::write(&path, to_csv(&out)).expect("CSV export");
    println!("\nwrote {} links to {}", out.len(), path.display());
}
