//! Active labelling: train a matcher with a fraction of the labels.
//!
//! Reproduces the paper's §V workflow on the Citations 1 domain:
//! Algorithm 1 bootstraps seed labels from the latent space, then
//! Algorithm 2 iteratively asks the "user" (here: the ground-truth
//! oracle) for the most valuable labels. Compare the final F1 with a
//! fully supervised matcher trained on every training pair.
//!
//! Run with: `cargo run --release --example active_labeling`

use vaer::core::active::{evaluate_matcher, ActiveConfig, ActiveLearner};
use vaer::core::entity::IrTable;
use vaer::core::matcher::{MatcherConfig, PairExamples, SiameseMatcher};
use vaer::core::repr::{ReprConfig, ReprModel};
use vaer::data::domains::{Domain, DomainSpec, Scale};
use vaer::embed::{fit_ir_model, IrKind};

fn main() {
    let dataset = DomainSpec::new(Domain::Citations1, Scale::Small).generate(11);
    println!("dataset: {}", dataset.summary());

    // Unsupervised stage: LSA IRs + VAE, no labels involved.
    let arity = dataset.table_a.schema.arity();
    let sentences = dataset.all_sentences();
    let ir_model = fit_ir_model(IrKind::Lsa, &sentences, &dataset.tables_raw(), 64, 11);
    let a: Vec<String> = dataset.table_a.sentences().map(str::to_owned).collect();
    let b: Vec<String> = dataset.table_b.sentences().map(str::to_owned).collect();
    let irs_a = IrTable::new(arity, ir_model.encode_batch(&a));
    let irs_b = IrTable::new(arity, ir_model.encode_batch(&b));
    let all = irs_a.irs.vconcat(&irs_b.irs);
    let (repr, _) = ReprModel::train(
        &all,
        &ReprConfig {
            ir_dim: 64,
            ..Default::default()
        },
    )
    .expect("VAE trains");

    // The labelling oracle simulates the human; it bills every query.
    let oracle = dataset.oracle();
    let test = PairExamples::build(&irs_a, &irs_b, &dataset.test_pairs);

    // Active learning with a budget of 60 labels.
    let config = ActiveConfig {
        iterations: 100,
        seed: 11,
        ..ActiveConfig::default()
    };
    let mut learner = ActiveLearner::new(&repr, &irs_a, &irs_b, config);
    println!(
        "bootstrap: {} auto-labelled seeds, {} pool candidates",
        learner.labeled().len(),
        learner.pool_size()
    );
    let matcher = learner.run(&oracle, 60, Some(&test)).expect("AL runs");
    println!("\nlearning curve (labels used -> test F1):");
    for c in learner.history() {
        if let Some(f1) = c.test_f1 {
            println!(
                "  {:>4} labels  F1 {:.2}  {}",
                c.labels_used,
                f1,
                "#".repeat((f1 * 30.0) as usize)
            );
        }
    }
    let al_f1 = evaluate_matcher(&matcher, &irs_a, &irs_b, &dataset.test_pairs).f1;

    // Fully supervised reference.
    let full_examples = PairExamples::build(&irs_a, &irs_b, &dataset.train_pairs);
    let full = SiameseMatcher::train(&repr, &full_examples, &MatcherConfig::default())
        .expect("full matcher");
    let full_f1 = full.evaluate(&test).f1;

    println!(
        "\nactive:  F1 {:.2} with {} oracle labels ({} bootstrap corrections)",
        al_f1,
        oracle.queries_used(),
        learner.bootstrap_corrections()
    );
    println!(
        "full:    F1 {:.2} with {} labels",
        full_f1,
        dataset.train_pairs.len()
    );
    println!(
        "label saving: {:.0}% of the training set",
        100.0 * oracle.queries_used() as f32 / dataset.train_pairs.len() as f32
    );
}
