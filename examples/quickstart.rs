//! Quickstart: end-to-end entity resolution with VAER in ~40 lines.
//!
//! Generates the Restaurants benchmark domain (a synthetic stand-in for
//! the Fodors–Zagat dataset, see DESIGN.md), fits the full VAER pipeline —
//! LSA intermediate representations → unsupervised VAE → Siamese matcher —
//! and evaluates on the held-out test pairs.
//!
//! Run with: `cargo run --release --example quickstart`

use vaer::core::pipeline::{Pipeline, PipelineConfig, ScorePrecision};
use vaer::data::domains::{Domain, DomainSpec, Scale};

fn main() {
    // 1. A benchmark dataset: two tables + labelled train/test pairs.
    let dataset = DomainSpec::new(Domain::Restaurants, Scale::Small).generate(7);
    println!("dataset: {}", dataset.summary());

    // 2. Fit the pipeline (IRs are unsupervised; only the matcher uses the
    //    training pairs).
    let mut config = PipelineConfig::paper();
    config.seed = 7;
    // Set VAER_SCORE_PRECISION=int8 to resolve on the quantized fast
    // lane (DESIGN.md §13). The int8 twin calibrates at fit time from a
    // frozen encoder, so fine-tuning is switched off with it.
    if std::env::var("VAER_SCORE_PRECISION").as_deref() == Ok("int8") {
        config.score_precision = ScorePrecision::Int8;
        config.matcher.fine_tune_encoder = false;
        println!("scoring precision: int8");
    }
    // Set VAER_CKPT_DIR=<dir> to snapshot VAE training state there; a
    // rerun after a crash (or an injected VAER_FAILPOINTS kill) resumes
    // from the newest valid snapshot instead of starting over.
    if let Ok(dir) = std::env::var("VAER_CKPT_DIR") {
        println!("checkpointing to {dir}");
        config.checkpoint_dir = Some(dir.into());
    }
    let pipeline = Pipeline::fit(&dataset, &config).expect("pipeline fits");
    let t = pipeline.timings();
    println!(
        "trained: IRs {:.2}s, VAE {:.2}s, matcher {:.2}s",
        t.ir_secs, t.repr_secs, t.match_secs
    );

    // 3. Evaluate on the held-out pairs.
    let report = pipeline.evaluate(&dataset.test_pairs);
    println!("test-set matching quality: {report}");

    // 4. Score a few individual pairs.
    let probs = pipeline.predict(&dataset.test_pairs);
    for (pair, prob) in dataset.test_pairs.pairs.iter().zip(&probs).take(5) {
        let name_a = &dataset.table_a.row(pair.left)[0];
        let name_b = &dataset.table_b.row(pair.right)[0];
        println!(
            "  {:<38} vs {:<38} -> p(dup) = {:.2} (truth: {})",
            name_a, name_b, prob, pair.is_match
        );
    }

    // 5. Full resolution: block with LSH, score every candidate pair on
    //    the configured precision lane, link above the threshold.
    let resolution = pipeline
        .resolve_plan()
        .run(config.knn_k, 0.5)
        .expect("resolution");
    println!(
        "resolved {} links from {} candidates ({:?} scoring)",
        resolution.links.len(),
        resolution.candidates,
        resolution.precision
    );

    // 6. The unsupervised representations alone already block well.
    let repr_report = pipeline.representation_report(&dataset.test_pairs, 10);
    println!(
        "unsupervised top-10 retrieval: recall {:.2}, precision {:.2}",
        repr_report.recall, repr_report.precision
    );
    assert!(
        report.f1 > 0.5,
        "quickstart should end with a usable matcher"
    );

    // 7. Telemetry: run with VAER_OBS=summary (or trace) to collect
    //    counters, timings, memory accounting, and throughput from the
    //    hot paths above and print the summary table (see DESIGN.md §9).
    //    With VAER_OBS=trace and VAER_TRACE_OUT=<path>, the span tree is
    //    also exported as Chrome Trace Event JSON (open in Perfetto or
    //    chrome://tracing — see DESIGN.md §14).
    if vaer::obs::enabled() {
        let sink = vaer::obs::ObsSink::snapshot();
        println!("\n{}", sink.summary());
        match sink.write_chrome_trace_if_requested() {
            Ok(Some(path)) => println!("(chrome trace written to {})", path.display()),
            Ok(None) => {}
            Err(e) => println!("(could not write chrome trace: {e})"),
        }
    }
}
