//! Transfer learning: reuse a representation model across domains.
//!
//! Trains a VAER representation model on the Citations 2 domain, saves it
//! to disk, reloads it, and applies it to the Beer domain *without any
//! representation retraining* (paper §III-D / Table VII). The transferred
//! pipeline reports `repr_secs = 0`.
//!
//! Run with: `cargo run --release --example transfer_learning`

use vaer::core::pipeline::{Pipeline, PipelineConfig};
use vaer::core::transfer::{adapt_dataset_arity, load_repr, save_repr};
use vaer::data::domains::{Domain, DomainSpec, Scale};

fn main() {
    let mut config = PipelineConfig::paper();
    config.seed = 21;

    // 1. Source task: train everything on Citations 2 (arity 4).
    let source = DomainSpec::new(Domain::Citations2, Scale::Small).generate(21);
    println!("source: {}", source.summary());
    let source_pipeline = Pipeline::fit(&source, &config).expect("source pipeline");
    println!(
        "source repr training took {:.2}s (F1 on source test: {:.2})",
        source_pipeline.timings().repr_secs,
        source_pipeline.evaluate(&source.test_pairs).f1
    );

    // 2. Persist the representation model, as a production system would.
    let path = std::env::temp_dir().join("vaer_transfer_example.bin");
    save_repr(source_pipeline.repr(), &path).expect("model saves");
    println!("saved representation model to {}", path.display());

    // 3. Target task: Beer (arity 4 already matches the source arity; the
    //    adapter is a no-op here but handles wider/narrower tables too).
    let target = DomainSpec::new(Domain::Beer, Scale::Small).generate(22);
    let adapted = adapt_dataset_arity(&target, source.table_a.schema.arity());
    println!("\ntarget: {}", adapted.summary());

    // 4. Local reference: train the representation from scratch.
    let local = Pipeline::fit(&adapted, &config).expect("local pipeline");

    // 5. Transferred: load the source model, skip representation training.
    let transferred_model = load_repr(&path).expect("model loads");
    let transferred =
        Pipeline::fit_transferred(&adapted, &config, transferred_model).expect("transfer");

    let local_f1 = local.evaluate(&adapted.test_pairs).f1;
    let transf_f1 = transferred.evaluate(&adapted.test_pairs).f1;
    println!(
        "\nlocal:       repr {:.2}s + match {:.2}s, F1 {:.2}",
        local.timings().repr_secs,
        local.timings().match_secs,
        local_f1
    );
    println!(
        "transferred: repr {:.2}s + match {:.2}s, F1 {:.2}",
        transferred.timings().repr_secs,
        transferred.timings().match_secs,
        transf_f1
    );
    println!(
        "quality delta from transfer: {:+.2} (paper Table VII: ≈ ±0.02)",
        transf_f1 - local_f1
    );
    std::fs::remove_file(&path).ok();
}
